#!/usr/bin/env python3
"""Partitioned multiprocessor EDF: pack, provision, verify.

A workload too heavy for one core (U ~ 1.34) is partitioned onto
identical cores with demand-based bin packing.  We compare the
admission predicates (cheap utilization gate vs. the paper's
epsilon-approximate demand test vs. the exact criterion), search the
minimum core count, check what the global-EDF density bound would
promise on the same hardware, and verify the final assignment per core
with the exact processor-demand test *and* the EDF simulation oracle.

Run:  python examples/partitioned_system.py
"""

from repro import TaskSet, analyze, task
from repro.partition import (
    min_cores_global_density,
    minimum_cores,
    pack,
    verify_partition,
)


def build_workload() -> TaskSet:
    # A consolidated dual-node workload: two control applications that
    # used to run on separate boards, now sharing one multicore ECU.
    # Deadlines sit below periods, so utilization alone misjudges cores.
    rows = [
        ("lidar-ingest", 4, 11, 25),
        ("fusion-front", 9, 35, 60),
        ("fusion-rear", 9, 40, 60),
        ("planner", 21, 90, 150),
        ("actuation", 6, 18, 40),
        ("telemetry-a", 25, 220, 400),
        ("ota-agent", 30, 800, 1200),
        ("lane-model", 13, 55, 90),
        ("diag-logger", 40, 700, 1000),
        ("watchdog", 2, 12, 30),
        ("camera-pipe", 17, 60, 100),
        ("map-match", 27, 240, 350),
    ]
    return TaskSet(
        [task(c, d, t, name=n) for n, c, d, t in rows], name="dual-node"
    )


def main() -> None:
    system = build_workload()
    print(system.summary())
    print(f"total utilization = {float(system.utilization):.3f} "
          "-> needs more than one core\n")

    # The same packing question under three admission predicates.
    print("first-fit-decreasing onto 3 cores, by admission predicate:")
    for admission in ("utilization", "approx-dbf", "exact-dbf"):
        result = pack(system, 3, "ffd", admission)
        tag = "complete" if result.success else (
            f"{len(result.unassigned)} unassigned")
        print(f"  {admission:>12s}: {tag}, "
              f"{result.admission_calls} admission calls "
              f"({result.admission})")
    print()

    # Provisioning: the smallest core count each heuristic gets away
    # with, under the paper's approximate demand test as admission.
    print("minimum cores by heuristic (admission: approx-dbf):")
    for heuristic in ("ff", "ffd", "bfd", "wfd"):
        found = minimum_cores(system, heuristic, "approx-dbf")
        probes = ", ".join(
            f"{m}{'+' if ok else '-'}" for m, ok in found.attempts)
        print(f"  {heuristic:>4s}: m = {found.cores}  "
              f"(search {found.strategy}: {probes})")
    density_m = min_cores_global_density(system)
    print(f"  global-EDF density bound would demand m = {density_m}\n")

    # The engine route: the same analysis by registered test name, the
    # way batch experiments and the CLI drive it.
    result = analyze(system, "partitioned-edf", cores=3, heuristic="ffd")
    print(f"analyze(..., 'partitioned-edf', cores=3): {result.verdict} "
          f"after {result.iterations} admission calls")
    assignment = result.details["assignment"]
    print(f"  assignment (task -> core): {assignment}\n")

    # Independent verification: exact processor-demand test and the
    # discrete-event EDF oracle replay, per core.
    found = minimum_cores(system, "ffd", "approx-dbf")
    packed = found.packing.system
    verification = verify_partition(packed, method="both")
    print(f"verification of the m = {found.cores} packing "
          f"(exact + simulation):")
    for verdict in verification.cores:
        exact = verdict.exact.verdict if verdict.exact else "n/a"
        sim = verdict.simulation.verdict if verdict.simulation else "n/a"
        print(f"  core {verdict.core}: {verdict.tasks} tasks, "
              f"exact={exact}, simulation={sim}")
    print(f"partition verdict: "
          f"{'schedulable' if verification.ok else 'NOT schedulable'}")


if __name__ == "__main__":
    main()

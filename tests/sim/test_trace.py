"""Unit tests for trace structures and their self-checks."""

import pytest

from repro.model import Job
from repro.sim import DeadlineMiss, ExecutionSegment, SimulationTrace


class TestSegments:
    def test_rejects_empty_segment(self):
        with pytest.raises(ValueError):
            ExecutionSegment(start=5, end=5, task_index=0, job_index=0)

    def test_length(self):
        assert ExecutionSegment(start=2, end=7, task_index=0, job_index=0).length == 5


class TestValidate:
    def _job(self, wcet=2, remaining=0, completion=2):
        j = Job.released(0, 0, release=0, deadline=10, wcet=wcet)
        j.remaining = remaining
        j.completion = completion
        return j

    def test_accepts_consistent_trace(self):
        trace = SimulationTrace(
            horizon=10,
            segments=[ExecutionSegment(0, 2, 0, 0)],
            jobs=[self._job()],
        )
        trace.validate()

    def test_rejects_overlapping_segments(self):
        trace = SimulationTrace(
            horizon=10,
            segments=[ExecutionSegment(0, 3, 0, 0), ExecutionSegment(2, 4, 1, 0)],
            jobs=[],
        )
        with pytest.raises(AssertionError, match="overlap"):
            trace.validate()

    def test_rejects_over_execution(self):
        trace = SimulationTrace(
            horizon=10,
            segments=[ExecutionSegment(0, 5, 0, 0)],
            jobs=[self._job(wcet=2, remaining=0, completion=5)],
        )
        with pytest.raises(AssertionError, match="over-executed"):
            trace.validate()

    def test_rejects_incomplete_marked_complete(self):
        job = self._job(wcet=4, remaining=0, completion=2)
        trace = SimulationTrace(
            horizon=10,
            segments=[ExecutionSegment(0, 2, 0, 0)],
            jobs=[job],
        )
        with pytest.raises(AssertionError):
            trace.validate()

    def test_feasible_flag(self):
        trace = SimulationTrace(horizon=5)
        assert trace.feasible
        trace.misses.append(DeadlineMiss(0, 0, deadline=3, completion=None))
        assert not trace.feasible

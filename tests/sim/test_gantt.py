"""Unit tests for the ASCII Gantt renderer."""

import pytest

from repro.model import TaskSet
from repro.sim import releases_for_taskset, render_gantt, simulate_edf


def trace_for(ts: TaskSet, horizon: int):
    return simulate_edf(releases_for_taskset(ts, horizon))


class TestRenderGantt:
    def test_execution_cells_marked(self):
        ts = TaskSet.of((2, 10, 10))
        text = render_gantt(trace_for(ts, 10), ts)
        row = [line for line in text.splitlines() if "|" in line][0]
        cells = row.split("|")[1]
        assert cells.startswith("##")
        assert "#" not in cells[2:]

    def test_waiting_cells_marked(self):
        # Task 1 waits while task 0 (earlier deadline) executes.
        ts = TaskSet.of((2, 4, 10), (2, 8, 10))
        text = render_gantt(trace_for(ts, 10), ts)
        rows = [line for line in text.splitlines() if "|" in line]
        second = rows[1].split("|")[1]
        assert second[0] == "."  # released, not yet running
        assert "#" in second

    def test_miss_marked(self):
        ts = TaskSet.of((2, 1, 10))
        text = render_gantt(trace_for(ts, 10), ts)
        assert "!" in text

    def test_labels_from_taskset(self):
        ts = TaskSet([TaskSet.of((1, 5, 5))[0].__class__(
            wcet=1, deadline=5, period=5, name="sensor")])
        text = render_gantt(trace_for(ts, 5), ts)
        assert "sensor" in text

    def test_truncation_notice(self):
        ts = TaskSet.of((1, 5, 5))
        text = render_gantt(trace_for(ts, 500), ts, width=20)
        assert "truncated" in text

    def test_cell_scaling(self):
        ts = TaskSet.of((10, 50, 50))
        text = render_gantt(trace_for(ts, 100), ts, cell=10)
        row = [line for line in text.splitlines() if "|" in line][0]
        assert row.split("|")[1].startswith("#")

    def test_validation(self):
        ts = TaskSet.of((1, 5, 5))
        with pytest.raises(ValueError):
            render_gantt(trace_for(ts, 5), ts, cell=0)

    def test_empty_trace(self):
        from repro.sim import SimulationTrace
        assert "empty" in render_gantt(SimulationTrace(horizon=10))

"""Unit tests for the simulation feasibility oracle."""

from repro.analysis import processor_demand_test
from repro.model import EventStream, EventStreamTask, TaskSet, task
from repro.result import Verdict
from repro.sim import simulate_feasibility

from ..conftest import random_feasible_candidate


class TestOracle:
    def test_feasible(self, simple_taskset):
        assert simulate_feasibility(simple_taskset).verdict is Verdict.FEASIBLE

    def test_infeasible_names_missed_deadline(self, infeasible_taskset):
        r = simulate_feasibility(infeasible_taskset)
        assert r.verdict is Verdict.INFEASIBLE
        assert r.witness is not None
        assert r.witness.interval == 1

    def test_overload_short_circuits(self):
        r = simulate_feasibility(TaskSet.of((3, 2, 2)))
        assert r.verdict is Verdict.INFEASIBLE
        assert r.iterations == 0

    def test_horizon_override(self, simple_taskset):
        r = simulate_feasibility(simple_taskset, horizon=100)
        assert r.verdict is Verdict.FEASIBLE
        assert r.bound == 100

    def test_zero_cost_system(self):
        assert simulate_feasibility(TaskSet.of((0, 5, 5))).verdict is Verdict.FEASIBLE

    def test_event_stream_system(self):
        system = [
            EventStreamTask(
                stream=EventStream.burst(count=3, spacing=2, period=30),
                wcet=2,
                deadline=8,
            ),
            task(5, 15, 20),
        ]
        r = simulate_feasibility(system)
        from repro.model import as_components
        assert r.is_feasible == processor_demand_test(as_components(system)).is_feasible

    def test_agreement_with_analysis(self, rng):
        """The central soundness check: simulation == analysis."""
        feasible = infeasible = 0
        for _ in range(300):
            ts = random_feasible_candidate(rng, max_tasks=4, max_period=20)
            analytic = processor_demand_test(ts).is_feasible
            simulated = simulate_feasibility(ts).is_feasible
            assert analytic == simulated, ts.summary()
            feasible += analytic
            infeasible += not analytic
        assert feasible > 30 and infeasible > 30

"""Unit tests for the fixed-priority dispatcher and EDF optimality."""

from repro.analysis import processor_demand_test
from repro.model import TaskSet
from repro.sim import (
    deadline_monotonic_priorities,
    releases_for_taskset,
    simulate_edf,
    simulate_fixed_priority,
)
from repro.analysis import synchronous_busy_period

from ..conftest import random_feasible_candidate


def dm_schedulable(ts: TaskSet) -> bool:
    horizon = synchronous_busy_period(ts)
    if horizon is None:
        return False
    if horizon == 0:
        return True
    plan = releases_for_taskset(ts, horizon)
    trace = simulate_fixed_priority(
        plan, deadline_monotonic_priorities(ts), stop_on_first_miss=True
    )
    return trace.feasible


class TestPriorities:
    def test_deadline_monotonic_ordering(self):
        ts = TaskSet.of((1, 9, 10), (1, 3, 10), (1, 6, 10))
        assert deadline_monotonic_priorities(ts) == [2, 0, 1]

    def test_deterministic_tie(self):
        ts = TaskSet.of((1, 5, 10), (1, 5, 10))
        assert deadline_monotonic_priorities(ts) == [0, 1]


class TestDispatcher:
    def test_static_priority_wins_regardless_of_deadline(self):
        # Task 0 has the shorter deadline -> higher DM priority, and it
        # preempts task 1 at every release.
        ts = TaskSet.of((2, 4, 5), (4, 15, 15))
        plan = releases_for_taskset(ts, 15)
        trace = simulate_fixed_priority(plan, deadline_monotonic_priorities(ts))
        trace.validate()
        assert trace.segments[0].task_index == 0
        starts = [s for s in trace.segments if s.task_index == 0]
        assert [s.start for s in starts] == [0, 5, 10]

    def test_trace_validates(self, rng):
        for _ in range(50):
            ts = random_feasible_candidate(rng, max_tasks=4, max_period=15)
            plan = releases_for_taskset(ts, 40)
            trace = simulate_fixed_priority(plan, deadline_monotonic_priorities(ts))
            trace.validate()


class TestEdfOptimality:
    """The claim the paper leans on: EDF schedules everything feasible."""

    def test_dm_never_beats_edf(self, rng):
        for _ in range(200):
            ts = random_feasible_candidate(rng, max_tasks=4, max_period=15)
            if dm_schedulable(ts):
                assert processor_demand_test(ts).is_feasible, ts.summary()

    def test_edf_strictly_dominates_on_a_witness(self):
        """A classic set: EDF-feasible, DM-infeasible."""
        # Leung/Whitehead-style example; verified by both simulators.
        ts = TaskSet.of((2, 5, 5), (4, 7, 7))
        assert processor_demand_test(ts).is_feasible  # U = 0.971..., EDF ok
        assert not dm_schedulable(ts)

    def test_existence_of_gap_in_random_population(self, rng):
        """EDF-feasible but DM-unschedulable sets exist in the wild —
        concentrated at high utilization, so sample there."""
        from repro.generation import generate_taskset

        edf_only = 0
        for seed in range(120):
            ts = generate_taskset(
                n=3,
                utilization=0.97,
                period_range=(5, 40),
                gap=(0.0, 0.2),
                seed=seed,
            )
            if processor_demand_test(ts).is_feasible and not dm_schedulable(ts):
                edf_only += 1
        assert edf_only >= 3  # the gap is real and not rare

"""Unit tests for the preemptive EDF dispatcher."""

from fractions import Fraction

from repro.model import TaskSet, task
from repro.sim import releases_for_taskset, simulate_edf


def run(ts: TaskSet, horizon):
    trace = simulate_edf(releases_for_taskset(ts, horizon))
    trace.validate()
    return trace


class TestSchedulingOrder:
    def test_earliest_deadline_runs_first(self):
        ts = TaskSet.of((2, 10, 20), (2, 5, 20))
        trace = run(ts, 20)
        # Task 1 (deadline 5) must execute before task 0.
        assert trace.segments[0].task_index == 1
        assert trace.segments[1].task_index == 0

    def test_preemption_on_earlier_deadline_arrival(self):
        # Long job starts, short-deadline job arrives and preempts.
        ts = TaskSet([task(6, 20, 50), task(1, 2, 7, phase=2)])
        trace = simulate_edf(releases_for_taskset(ts, 20, synchronous=False))
        trace.validate()
        by_task = [(s.task_index, s.start, s.end) for s in trace.segments]
        assert by_task[0] == (0, 0, 2)      # long job runs first
        assert by_task[1] == (1, 2, 3)      # preempted by short deadline
        assert by_task[2][0] == 0           # long job resumes

    def test_deterministic_tie_break(self):
        ts = TaskSet.of((1, 10, 10), (1, 10, 10))
        trace = run(ts, 10)
        assert [s.task_index for s in trace.segments] == [0, 1]

    def test_idle_gap(self):
        ts = TaskSet([task(1, 2, 10, phase=5)])
        trace = simulate_edf(releases_for_taskset(ts, 10, synchronous=False))
        trace.validate()
        assert trace.segments[0].start == 5
        assert trace.idle_time == 9


class TestMissDetection:
    def test_miss_recorded_at_deadline(self):
        ts = TaskSet.of((2, 1, 10))  # C > D: certain miss
        trace = run(ts, 10)
        assert not trace.feasible
        miss = trace.misses[0]
        assert miss.deadline == 1

    def test_completion_exactly_at_deadline_ok(self):
        ts = TaskSet.of((3, 3, 10))
        trace = run(ts, 10)
        assert trace.feasible

    def test_miss_of_non_running_job_detected(self):
        # Two units of demand due at 1: one job must miss.
        ts = TaskSet.of((1, 1, 10), (1, 1, 10))
        trace = run(ts, 10)
        assert len(trace.misses) == 1

    def test_deadline_beyond_horizon_not_judged(self):
        ts = TaskSet.of((5, 100, 100))
        trace = run(ts, 10)
        assert trace.feasible  # deadline at 100 outside window

    def test_stop_on_first_miss(self):
        ts = TaskSet.of((2, 1, 3))
        plan = releases_for_taskset(ts, 30)
        trace = simulate_edf(plan, stop_on_first_miss=True)
        assert len(trace.misses) >= 1


class TestAccounting:
    def test_busy_plus_idle_equals_horizon(self, rng):
        from ..conftest import random_feasible_candidate
        for _ in range(50):
            ts = random_feasible_candidate(rng, max_tasks=4, max_period=15)
            trace = run(ts, 40)
            assert trace.busy_time + trace.idle_time == 40

    def test_response_times(self):
        ts = TaskSet.of((2, 10, 10), (3, 9, 15))
        trace = run(ts, 15)
        rts = trace.response_times()
        assert rts[(1, 0)] == 3   # earliest deadline runs first
        assert rts[(0, 0)] == 5
        assert trace.worst_response_time(0) == 5
        assert trace.worst_response_time(9) is None

    def test_fraction_parameters(self):
        ts = TaskSet([task(Fraction(1, 2), 1, Fraction(3, 2))])
        trace = run(ts, 6)
        assert trace.feasible
        assert trace.busy_time == 2

"""Unit tests for release-plan construction."""

import pytest

from repro.model import EventStream, EventStreamTask, TaskSet, task
from repro.sim import ReleasePlan, releases_for_system, releases_for_taskset


class TestTasksetPlans:
    def test_synchronous_releases(self):
        ts = TaskSet.of((1, 4, 10), (2, 5, 6))
        plan = releases_for_taskset(ts, 20)
        releases = [(j.task_index, j.release) for j in plan.jobs]
        assert releases == [(0, 0), (1, 0), (1, 6), (0, 10), (1, 12), (1, 18)]

    def test_release_at_horizon_excluded(self):
        ts = TaskSet.of((1, 4, 10))
        plan = releases_for_taskset(ts, 10)
        assert len(plan.jobs) == 1  # job at 10 excluded

    def test_phases_honoured_when_not_synchronous(self):
        ts = TaskSet([task(1, 4, 10, phase=3)])
        plan = releases_for_taskset(ts, 25, synchronous=False)
        assert [j.release for j in plan.jobs] == [3, 13, 23]

    def test_synchronous_overrides_phase(self):
        ts = TaskSet([task(1, 4, 10, phase=3)])
        plan = releases_for_taskset(ts, 25, synchronous=True)
        assert [j.release for j in plan.jobs] == [0, 10, 20]

    def test_zero_cost_tasks_skipped(self):
        plan = releases_for_taskset(TaskSet.of((0, 5, 5)), 20)
        assert len(plan.jobs) == 0

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            releases_for_taskset(TaskSet.of((1, 2, 3)), 0)

    def test_plan_validates_ordering(self):
        from repro.model import Job
        good = Job.released(0, 0, 0, 4, 1)
        late = Job.released(0, 1, 5, 4, 1)
        ReleasePlan(jobs=(good, late), horizon=10)
        with pytest.raises(ValueError):
            ReleasePlan(jobs=(late, good), horizon=10)


class TestSystemPlans:
    def test_event_stream_releases_at_element_offsets(self):
        est = EventStreamTask(
            stream=EventStream.burst(count=2, spacing=3, period=20),
            wcet=1,
            deadline=5,
        )
        plan = releases_for_system([est], 25)
        assert [j.release for j in plan.jobs] == [0, 3, 20, 23]
        assert [j.absolute_deadline for j in plan.jobs] == [5, 8, 25, 28]

    def test_mixed_system(self):
        est = EventStreamTask(stream=EventStream.periodic(10), wcet=1, deadline=5)
        plan = releases_for_system([est, task(2, 6, 8)], 16)
        indices = {j.task_index for j in plan.jobs}
        assert indices == {0, 1}

    def test_rejects_unknown_entries(self):
        with pytest.raises(TypeError):
            releases_for_system([42], 10)  # type: ignore[list-item]

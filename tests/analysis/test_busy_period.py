"""Unit tests for the synchronous busy period."""

from fractions import Fraction

from repro.analysis import busy_period_of_components, synchronous_busy_period
from repro.model import DemandComponent, TaskSet, as_components, task

from ..conftest import random_feasible_candidate


class TestSynchronousBusyPeriod:
    def test_single_task(self):
        assert synchronous_busy_period(TaskSet.of((2, 5, 5))) == 2

    def test_hand_computed_fixed_point(self):
        # C=(2,3), T=(4,10): L0=5 -> 2*2+3=7 -> 2*2+3=7 fixed point.
        ts = TaskSet.of((2, 4, 4), (3, 10, 10))
        assert synchronous_busy_period(ts) == 7

    def test_full_utilization_reaches_hyperperiod_fixpoint(self):
        ts = TaskSet.of((1, 2, 2), (1, 2, 2))
        assert synchronous_busy_period(ts) == 2

    def test_overload_returns_none(self):
        assert synchronous_busy_period(TaskSet.of((3, 2, 2))) is None

    def test_zero_cost_tasks_ignored(self):
        assert synchronous_busy_period(TaskSet.of((0, 5, 5))) == 0

    def test_fixed_point_property(self, rng):
        for _ in range(100):
            ts = random_feasible_candidate(rng)
            L = synchronous_busy_period(ts)
            assert L == sum(-((-L) // t.period) * t.wcet for t in ts if t.wcet)
            assert L <= ts.hyperperiod

    def test_rational_parameters(self):
        ts = TaskSet([task(Fraction(1, 2), 1, 2), task(Fraction(1, 3), 1, 3)])
        L = synchronous_busy_period(ts)
        assert L == Fraction(5, 6)


class TestComponentBusyPeriod:
    def test_conservative_vs_taskset(self, rng):
        """Component busy period (offset-0 model) bounds the true one."""
        for _ in range(50):
            ts = random_feasible_candidate(rng)
            exact = synchronous_busy_period(ts)
            conservative = busy_period_of_components(as_components(ts))
            assert conservative >= exact

    def test_one_shot_counted_once(self):
        comps = [
            DemandComponent(wcet=3, first_deadline=5),
            DemandComponent(wcet=1, first_deadline=4, period=4),
        ]
        # L = 3 + ceil(L/4): L0=4 -> 3+1=4 fixed point.
        assert busy_period_of_components(comps) == 4

    def test_empty(self):
        assert busy_period_of_components([]) == 0

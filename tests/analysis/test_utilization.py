"""Unit tests for the utilization (Liu & Layland) test."""

from fractions import Fraction

from repro.analysis import liu_layland_test, utilization_of
from repro.model import TaskSet
from repro.result import Verdict


class TestUtilizationOf:
    def test_exact(self):
        assert utilization_of(TaskSet.of((1, 4, 4), (1, 2, 4))) == Fraction(1, 2)


class TestLiuLayland:
    def test_overload_infeasible(self):
        r = liu_layland_test(TaskSet.of((3, 4, 4), (2, 4, 4)))
        assert r.verdict is Verdict.INFEASIBLE

    def test_implicit_deadlines_feasible(self):
        r = liu_layland_test(TaskSet.of((2, 4, 4), (2, 4, 4)))
        assert r.verdict is Verdict.FEASIBLE

    def test_deadline_beyond_period_still_decided(self):
        r = liu_layland_test(TaskSet.of((2, 6, 4), (2, 5, 4)))
        assert r.verdict is Verdict.FEASIBLE

    def test_constrained_deadline_unknown(self):
        r = liu_layland_test(TaskSet.of((2, 3, 4), (1, 4, 4)))
        assert r.verdict is Verdict.UNKNOWN

    def test_exact_boundary_u_equals_one(self):
        r = liu_layland_test(TaskSet.of((1, 2, 2), (1, 2, 2)))
        assert r.verdict is Verdict.FEASIBLE

"""Unit tests for the feasibility bounds (paper Sections 3.3 / 4.3)."""

from fractions import Fraction

import pytest

from repro.analysis import (
    BoundMethod,
    baruah_bound,
    busy_period_of_components,
    feasibility_bound,
    first_overflow,
    george_bound,
    superposition_bound,
)
from repro.model import DemandComponent, TaskSet, as_components

from ..conftest import random_feasible_candidate


class TestHandValues:
    def test_baruah_formula(self):
        # U = 1/2, max gap = T - D = 6: bound = (1/2)/(1/2) * 6 = 6.
        ts = TaskSet.of((5, 4, 10))
        assert baruah_bound(ts) == 6

    def test_george_formula(self):
        # (1 - 4/10) * 5 / (1 - 1/2) = 3 / 0.5 = 6.
        ts = TaskSet.of((5, 4, 10))
        assert george_bound(ts) == 6

    def test_superposition_dmax_floor(self):
        # Linear part = 6 but Dmax = 4 < 6 -> bound 6; with a large
        # deadline task the floor engages.
        ts = TaskSet.of((5, 4, 10), (1, 100, 1000))
        assert superposition_bound(ts) >= 100

    def test_inapplicable_at_full_utilization(self):
        ts = TaskSet.of((1, 2, 2), (1, 2, 2))
        assert baruah_bound(ts) is None
        assert george_bound(ts) is None
        assert superposition_bound(ts) is None
        # BEST falls back to the busy period.
        assert feasibility_bound(ts, BoundMethod.BEST) == 2

    def test_overload_has_no_bound(self):
        assert feasibility_bound(TaskSet.of((3, 2, 2))) is None

    def test_zero_when_no_gap(self):
        # All deadlines at periods: no interval ever needs checking.
        ts = TaskSet.of((1, 4, 4), (1, 6, 6))
        assert baruah_bound(ts) == 0
        assert george_bound(ts) == 0


class TestOrderings:
    def test_george_never_exceeds_baruah(self, rng):
        """George et al.'s bound is tighter (paper Section 4.3)."""
        for _ in range(200):
            ts = random_feasible_candidate(rng)
            if ts.utilization == 1:
                continue
            assert george_bound(ts) <= baruah_bound(ts)

    def test_superposition_linear_part_at_most_george(self, rng):
        """With D > T slack kept, the superposition sum is <= George's.

        The comparison applies to the linear parts; the Dmax floor is a
        separate soundness region (see module docs).
        """
        for _ in range(200):
            ts = random_feasible_candidate(rng)
            u = Fraction(ts.utilization)
            if u >= 1:
                continue
            linear = sum(
                (1 - Fraction(t.deadline) / Fraction(t.period)) * Fraction(t.wcet)
                for t in ts
            ) / (1 - u)
            assert linear <= george_bound(ts)

    def test_equal_when_all_constrained(self, rng):
        for _ in range(200):
            ts = random_feasible_candidate(rng, deadline_slack=0)
            ts = TaskSet([t.with_deadline(min(t.deadline, t.period)) for t in ts])
            if ts.utilization >= 1:
                continue
            linear = sum(
                (1 - Fraction(t.deadline) / Fraction(t.period)) * Fraction(t.wcet)
                for t in ts
            ) / (1 - Fraction(ts.utilization))
            assert linear == george_bound(ts)


class TestSoundness:
    """The defining property: any first overflow lies within each bound."""

    @pytest.mark.parametrize(
        "bound_fn", [baruah_bound, george_bound, superposition_bound]
    )
    def test_overflow_within_bound(self, rng, bound_fn):
        checked = 0
        for _ in range(400):
            ts = random_feasible_candidate(rng)
            if ts.utilization >= 1:
                continue
            horizon = busy_period_of_components(as_components(ts))
            overflow = first_overflow(ts, horizon)
            if overflow is None:
                continue
            checked += 1
            assert overflow[0] <= bound_fn(ts), ts.summary()
        assert checked > 20

    def test_busy_period_bound_covers_overflow(self, rng):
        checked = 0
        for _ in range(300):
            ts = random_feasible_candidate(rng)
            horizon = busy_period_of_components(as_components(ts)) * 2 + 100
            overflow = first_overflow(ts, horizon)
            if overflow is None:
                continue
            checked += 1
            assert overflow[0] <= feasibility_bound(ts, BoundMethod.BUSY_PERIOD)
        assert checked > 20


class TestOneShotGeneralisation:
    def test_one_shots_enter_numerators(self):
        comps = [
            DemandComponent(wcet=4, first_deadline=3),
            DemandComponent(wcet=1, first_deadline=8, period=8),
        ]
        # U = 1/8; baruah = (U*0 + 4)/(7/8) = 32/7; george = 4/(7/8).
        assert baruah_bound(comps) == Fraction(32, 7)
        assert george_bound(comps) == Fraction(32, 7)
        assert superposition_bound(comps) == 8  # Dmax floor

    def test_bound_covers_one_shot_overflow(self):
        comps = [
            DemandComponent(wcet=4, first_deadline=3),
            DemandComponent(wcet=1, first_deadline=8, period=8),
        ]
        overflow = first_overflow(comps, 100)
        assert overflow is not None
        assert overflow[0] <= feasibility_bound(comps, BoundMethod.BEST)

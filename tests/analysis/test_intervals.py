"""Unit tests for the interval queue."""

from repro.analysis import IntervalQueue


class TestIntervalQueue:
    def test_orders_by_interval(self):
        q: IntervalQueue[str] = IntervalQueue()
        q.push(5, "b")
        q.push(3, "a")
        q.push(9, "c")
        assert [q.pop() for _ in range(3)] == [(3, "a"), (5, "b"), (9, "c")]

    def test_fifo_on_ties(self):
        q: IntervalQueue[str] = IntervalQueue()
        for payload in "abc":
            q.push(7, payload)
        assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_peek_and_len(self):
        q: IntervalQueue[int] = IntervalQueue()
        assert q.peek() is None
        assert not q
        q.push(2, 42)
        assert q.peek() == (2, 42)
        assert len(q) == 1
        q.pop()
        assert len(q) == 0

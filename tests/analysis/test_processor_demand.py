"""Unit tests for the processor demand test (paper Def. 3)."""

import pytest

from repro.analysis import (
    BoundMethod,
    busy_period_of_components,
    dbf,
    first_overflow,
    processor_demand_test,
)
from repro.model import TaskSet, as_components
from repro.result import Verdict

from ..conftest import random_feasible_candidate


class TestVerdicts:
    def test_feasible_set(self, simple_taskset):
        r = processor_demand_test(simple_taskset)
        assert r.verdict is Verdict.FEASIBLE
        assert r.bound is not None

    def test_infeasible_with_exact_witness(self, infeasible_taskset):
        r = processor_demand_test(infeasible_taskset)
        assert r.verdict is Verdict.INFEASIBLE
        assert r.witness is not None and r.witness.exact
        assert dbf(infeasible_taskset, r.witness.interval) == r.witness.demand
        assert r.witness.demand > r.witness.interval

    def test_overload_short_circuits(self):
        r = processor_demand_test(TaskSet.of((3, 2, 2)))
        assert r.verdict is Verdict.INFEASIBLE
        assert r.iterations == 0

    def test_empty_system(self):
        assert processor_demand_test([]).verdict is Verdict.FEASIBLE

    def test_witness_is_first_overflow(self, rng):
        found = 0
        for _ in range(200):
            ts = random_feasible_candidate(rng)
            r = processor_demand_test(ts)
            if r.is_infeasible:
                found += 1
                horizon = busy_period_of_components(as_components(ts))
                assert first_overflow(ts, horizon)[0] == r.witness.interval
        assert found > 10


class TestBoundMethods:
    @pytest.mark.parametrize(
        "method",
        [
            BoundMethod.BARUAH,
            BoundMethod.GEORGE,
            BoundMethod.SUPERPOSITION,
            BoundMethod.BUSY_PERIOD,
            BoundMethod.BEST,
        ],
    )
    def test_all_bounds_same_verdict(self, rng, method):
        for _ in range(120):
            ts = random_feasible_candidate(rng)
            reference = processor_demand_test(ts, bound_method=BoundMethod.BUSY_PERIOD)
            r = processor_demand_test(ts, bound_method=method)
            assert r.is_feasible == reference.is_feasible, (method, ts.summary())

    def test_tighter_bound_never_costs_more(self, rng):
        for _ in range(60):
            ts = random_feasible_candidate(rng)
            if ts.utilization >= 1:
                continue
            best = processor_demand_test(ts, bound_method=BoundMethod.BEST)
            baruah = processor_demand_test(ts, bound_method=BoundMethod.BARUAH)
            assert best.iterations <= baruah.iterations


class TestIterationAccounting:
    def test_counts_distinct_intervals(self):
        # Two tasks with identical deadline grids: one check per grid point.
        ts = TaskSet.of((1, 4, 10), (1, 4, 10))
        r = processor_demand_test(ts, max_interval=34)
        assert r.verdict is Verdict.FEASIBLE
        assert r.iterations == 4  # intervals 4, 14, 24, 34

    def test_max_interval_override(self, simple_taskset):
        r = processor_demand_test(simple_taskset, max_interval=6)
        assert r.iterations == 1  # only the interval at 6

"""Unit tests for Devi's sufficient test (paper Def. 1)."""

from fractions import Fraction

from repro.analysis import devi_test
from repro.model import DemandComponent, TaskSet
from repro.result import Verdict

from ..conftest import random_feasible_candidate


def reference_devi(ts: TaskSet) -> bool:
    """Literal transcription of paper Def. 1 (Fraction arithmetic)."""
    ordered = sorted(ts, key=lambda t: t.deadline)
    if sum(Fraction(t.wcet, 1) / Fraction(t.period) for t in ordered) > 1:
        return False
    for k in range(1, len(ordered) + 1):
        prefix = ordered[:k]
        dk = Fraction(prefix[-1].deadline)
        rate = sum(Fraction(t.wcet) / Fraction(t.period) for t in prefix)
        slack = sum(
            (Fraction(t.period) - min(Fraction(t.period), Fraction(t.deadline)))
            / Fraction(t.period)
            * Fraction(t.wcet)
            for t in prefix
        )
        if rate + slack / dk > 1:
            return False
    return True


class TestAgainstReference:
    def test_randomised_agreement(self, rng):
        accepted = rejected = 0
        for _ in range(300):
            ts = random_feasible_candidate(rng)
            expected = reference_devi(ts)
            result = devi_test(ts)
            assert result.is_feasible == expected, ts.summary()
            accepted += expected
            rejected += not expected
        assert accepted > 10 and rejected > 10  # both branches exercised


class TestVerdicts:
    def test_accepts_liu_layland_case(self):
        r = devi_test(TaskSet.of((1, 4, 4), (1, 4, 4)))
        assert r.verdict is Verdict.FEASIBLE
        assert r.iterations == 2  # one comparison per task

    def test_rejection_is_unknown_not_infeasible(self):
        # Feasible but with deadlines far below periods at high U.
        ts = TaskSet.of((4, 8, 40), (6, 21, 60), (11, 51, 100), (13, 76, 120),
                        (23, 127, 200), (27, 187, 300), (69, 425, 600),
                        (92, 765, 1000), (126, 1190, 1500))
        r = devi_test(ts)
        assert r.verdict is Verdict.UNKNOWN
        assert r.witness is not None
        assert not r.witness.exact

    def test_overload_infeasible(self):
        assert devi_test(TaskSet.of((3, 2, 2))).verdict is Verdict.INFEASIBLE

    def test_iterations_stop_at_first_failure(self):
        ts = TaskSet.of((9, 10, 100), (1, 1000, 1000))
        # First prefix: 9/100 + (90/100*9)/10 = 0.09 + 0.81 = 0.9 <= 1 ok;
        # tighten deadline to force first-prefix failure:
        tight = TaskSet.of((9, 9, 100), (1, 1000, 1000))
        r = devi_test(tight)
        if not r.is_feasible:
            assert r.iterations <= 2

    def test_one_shot_component_counts_full_cost(self):
        # A one-shot of cost 5 due at 4 cannot pass Devi's prefix at D=4
        # together with rate 1/2.
        comps = [
            DemandComponent(wcet=5, first_deadline=4),
            DemandComponent(wcet=5, first_deadline=10, period=10),
        ]
        r = devi_test(comps)
        assert r.verdict is Verdict.UNKNOWN

    def test_input_order_irrelevant(self, rng):
        for _ in range(50):
            ts = random_feasible_candidate(rng)
            shuffled = list(ts)
            rng.shuffle(shuffled)
            assert devi_test(ts).is_feasible == devi_test(TaskSet(shuffled)).is_feasible

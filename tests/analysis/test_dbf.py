"""Unit tests for demand bound function machinery."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import dbf, dbf_points, dbf_step_intervals, demand_profile, first_overflow
from repro.model import DemandComponent, TaskSet, task

from ..conftest import random_feasible_candidate


class TestDbf:
    def test_matches_paper_definition(self):
        """dbf(I) = sum floor((I - D)/T + 1) * C over tasks with D <= I."""
        ts = TaskSet.of((2, 6, 10), (3, 11, 16))
        def reference(interval):
            total = 0
            for t in ts:
                if interval >= t.deadline:
                    total += ((interval - t.deadline) // t.period + 1) * t.wcet
            return total
        for interval in range(0, 120):
            assert dbf(ts, interval) == reference(interval)

    def test_empty_system(self):
        assert dbf([], 100) == 0

    @given(st.integers(min_value=0, max_value=400))
    def test_monotone(self, x):
        ts = TaskSet.of((1, 3, 7), (2, 10, 12))
        assert dbf(ts, x) <= dbf(ts, x + 1)


class TestStepIntervals:
    def test_sorted_unique(self):
        ts = TaskSet.of((1, 4, 10), (1, 4, 5))  # coincident deadlines at 4, 14, ...
        steps = list(dbf_step_intervals(ts, 30))
        assert steps == sorted(set(steps))
        assert 4 in steps and 14 in steps

    def test_respects_bound(self):
        ts = TaskSet.of((1, 4, 10))
        assert list(dbf_step_intervals(ts, 25)) == [4, 14, 24]

    def test_lazy_unbounded(self):
        ts = TaskSet.of((1, 4, 10))
        it = dbf_step_intervals(ts)
        assert [next(it) for _ in range(4)] == [4, 14, 24, 34]


class TestDbfPoints:
    def test_values_match_direct_evaluation(self):
        ts = TaskSet.of((2, 6, 10), (3, 11, 16), (1, 6, 8))
        for interval, demand in dbf_points(ts, 200):
            assert demand == dbf(ts, interval)

    def test_coincident_deadlines_reported_once(self):
        ts = TaskSet.of((1, 4, 10), (2, 4, 10))
        points = list(dbf_points(ts, 20))
        assert points[0] == (4, 3)  # both jumps folded into one report
        intervals = [p[0] for p in points]
        assert len(intervals) == len(set(intervals))


class TestFirstOverflow:
    def test_finds_known_overflow(self):
        ts = TaskSet.of((1, 1, 2), (1, 1, 2))
        assert first_overflow(ts, 10) == (1, 2)

    def test_none_for_feasible(self, simple_taskset):
        assert first_overflow(simple_taskset, 200) is None

    def test_agrees_with_scan(self, rng):
        for _ in range(100):
            ts = random_feasible_candidate(rng)
            result = first_overflow(ts, 60)
            manual = None
            for i in range(1, 61):
                if dbf(ts, i) > i:
                    manual = i
                    break
            if result is None:
                assert manual is None
            else:
                assert manual == result[0]
                assert result[1] == dbf(ts, result[0]) > result[0]


def test_demand_profile_is_materialised_points():
    ts = TaskSet.of((2, 6, 10))
    assert demand_profile(ts, 30) == [(6, 2), (16, 4), (26, 6)]

"""Unit tests for sensitivity analysis."""

from fractions import Fraction

import pytest

from repro.analysis import (
    critical_scaling_factor,
    minimum_feasible_deadline,
    processor_demand_test,
    wcet_slack,
)
from repro.model import TaskSet

from ..conftest import random_feasible_candidate


class TestCriticalScalingFactor:
    def test_reciprocal_of_load(self):
        ts = TaskSet.of((1, 2, 4), (1, 4, 4))  # dbf(2)=1, dbf(4)=2: load 1/2
        assert critical_scaling_factor(ts) == 2

    def test_none_for_zero_demand(self):
        assert critical_scaling_factor(TaskSet.of((0, 5, 5))) is None

    def test_factor_is_exact_threshold(self, rng):
        checked = 0
        for _ in range(100):
            ts = random_feasible_candidate(rng)
            if not processor_demand_test(ts).is_feasible:
                continue
            factor = critical_scaling_factor(ts)
            if factor is None:
                continue
            at = TaskSet([t.with_wcet(t.wcet * Fraction(factor)) for t in ts])
            assert processor_demand_test(at).is_feasible, ts.summary()
            beyond = TaskSet(
                [t.with_wcet(t.wcet * Fraction(factor) * Fraction(101, 100)) for t in ts]
            )
            assert not processor_demand_test(beyond).is_feasible, ts.summary()
            checked += 1
        assert checked > 30


class TestWcetSlack:
    def test_hand_computed(self):
        # tau1=(1,2,4), tau2=(1,4,4).
        # Inflating tau1 by delta: dbf(2) = 1+delta <= 2 binds at delta=1.
        # Inflating tau2 by delta: dbf(8) = 2 + 2(1+delta) <= 8 binds at
        # delta=2 (dbf(4) = 2+delta <= 4 also gives 2).
        ts = TaskSet.of((1, 2, 4), (1, 4, 4))
        assert wcet_slack(ts, 0) == 1
        assert wcet_slack(ts, 1) == 2

    def test_requires_feasible_start(self):
        with pytest.raises(ValueError):
            wcet_slack(TaskSet.of((1, 1, 2), (1, 1, 2)), 0)

    def test_result_is_maximal(self, rng):
        checked = 0
        for _ in range(60):
            ts = random_feasible_candidate(rng, max_tasks=4)
            if not processor_demand_test(ts).is_feasible:
                continue
            slack = wcet_slack(ts, 0)
            grown = TaskSet(
                [t.with_wcet(t.wcet + slack) if i == 0 else t for i, t in enumerate(ts)]
            )
            assert processor_demand_test(grown).is_feasible
            broken = TaskSet(
                [t.with_wcet(t.wcet + slack + 1) if i == 0 else t
                 for i, t in enumerate(ts)]
            )
            assert not processor_demand_test(broken).is_feasible
            checked += 1
        assert checked > 20

    def test_resolution_validation(self, simple_taskset):
        with pytest.raises(ValueError):
            wcet_slack(simple_taskset, 0, resolution=0)


class TestMinimumFeasibleDeadline:
    def test_hand_computed(self):
        ts = TaskSet.of((2, 10, 10), (3, 10, 10))
        # Task 0 alone could go to D=2 but shares the processor: at D=5
        # dbf(5)=2 fits; the exact minimum here is C=2 while task 1
        # still meets D=10 (dbf(10) = 5 <= 10).
        assert minimum_feasible_deadline(ts, 0) == 2

    def test_result_is_minimal(self, rng):
        checked = 0
        for _ in range(60):
            ts = random_feasible_candidate(rng, max_tasks=4)
            if not processor_demand_test(ts).is_feasible:
                continue
            minimal = minimum_feasible_deadline(ts, 0)
            assert minimal <= ts[0].deadline
            tightened = TaskSet(
                [t.with_deadline(minimal) if i == 0 else t for i, t in enumerate(ts)]
            )
            assert processor_demand_test(tightened).is_feasible
            if minimal > ts[0].wcet:
                broken = TaskSet(
                    [t.with_deadline(minimal - 1) if i == 0 else t
                     for i, t in enumerate(ts)]
                )
                assert not processor_demand_test(broken).is_feasible
            checked += 1
        assert checked > 20

    def test_requires_feasible_start(self):
        with pytest.raises(ValueError):
            minimum_feasible_deadline(TaskSet.of((1, 1, 2), (1, 1, 2)), 0)

"""Unit tests for the QPA comparator (extension beyond the paper)."""

from repro.analysis import processor_demand_test, qpa_test
from repro.model import TaskSet
from repro.result import Verdict

from ..conftest import random_feasible_candidate


class TestVerdicts:
    def test_feasible(self, simple_taskset):
        assert qpa_test(simple_taskset).verdict is Verdict.FEASIBLE

    def test_infeasible_with_exact_witness(self, infeasible_taskset):
        r = qpa_test(infeasible_taskset)
        assert r.verdict is Verdict.INFEASIBLE
        assert r.witness is not None and r.witness.exact
        assert r.witness.demand > r.witness.interval

    def test_overload(self):
        assert qpa_test(TaskSet.of((3, 2, 2))).verdict is Verdict.INFEASIBLE

    def test_empty(self):
        assert qpa_test([]).verdict is Verdict.FEASIBLE

    def test_agreement_with_processor_demand(self, rng):
        feasible = infeasible = 0
        for _ in range(400):
            ts = random_feasible_candidate(rng)
            q = qpa_test(ts)
            p = processor_demand_test(ts)
            assert q.is_feasible == p.is_feasible, ts.summary()
            feasible += q.is_feasible
            infeasible += not q.is_feasible
        assert feasible > 20 and infeasible > 20


class TestEffort:
    def test_usually_cheaper_than_forward_scan(self, rng):
        """QPA's selling point: far fewer dbf evaluations on average.

        The effect needs sets with a dense deadline grid (many tasks at
        high utilization); on trivial sets both tests cost almost
        nothing and the comparison is noise.
        """
        from repro.analysis import BoundMethod
        from repro.generation import generate_taskset

        q_total = p_total = 0
        for seed in range(25):
            ts = generate_taskset(
                n=20,
                utilization=0.92,
                period_range=(100, 10_000),
                gap=(0.1, 0.4),
                seed=seed,
            )
            q_total += qpa_test(ts, bound_method=BoundMethod.BARUAH).iterations
            p_total += processor_demand_test(
                ts, bound_method=BoundMethod.BARUAH
            ).iterations
        assert q_total < p_total

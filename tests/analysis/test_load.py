"""Unit tests for the exact system load."""

from fractions import Fraction

import pytest

from repro.analysis import (
    minimum_processor_speed,
    processor_demand_test,
    scaled_wcets,
    system_load,
)
from repro.model import TaskSet

from ..conftest import random_feasible_candidate


class TestSystemLoad:
    def test_hand_computed(self):
        # dbf(1) = 1 at I = 1 is the peak: load 1... use a tighter case:
        ts = TaskSet.of((1, 2, 4), (1, 2, 4))  # dbf(2) = 2 -> load 1
        assert system_load(ts) == 1

    def test_implicit_deadlines_load_is_utilization(self):
        ts = TaskSet.of((1, 4, 4), (2, 6, 6))
        assert system_load(ts) == ts.utilization

    def test_overload_returns_utilization(self):
        ts = TaskSet.of((3, 2, 2))
        assert system_load(ts) == Fraction(3, 2)

    def test_empty(self):
        assert system_load([]) == 0

    def test_load_decides_feasibility(self, rng):
        """LOAD <= 1 iff the exact tests accept."""
        both = {True: 0, False: 0}
        for _ in range(200):
            ts = random_feasible_candidate(rng)
            load = system_load(ts)
            feasible = processor_demand_test(ts).is_feasible
            assert (load <= 1) == feasible, ts.summary()
            both[feasible] += 1
        assert min(both.values()) > 20

    def test_minimum_speed_alias(self, simple_taskset):
        assert minimum_processor_speed(simple_taskset) == system_load(simple_taskset)

    def test_peak_beyond_feasibility_bound(self):
        """Regression: the ratio peak of (4, 13, 19) sits at its first
        deadline, far beyond the George/Baruah bound (~1.6)."""
        from fractions import Fraction
        ts = TaskSet.of((4, 13, 19))
        assert system_load(ts) == Fraction(4, 13)

    def test_peak_at_later_deadline(self):
        """The peak can hide beyond every first deadline: here no demand
        step up to the largest first deadline beats U = 14/27, yet
        dbf(66)/66 = 35/66 does — the busy-period decision (step 3 of
        the algorithm) has to find it."""
        from fractions import Fraction
        ts = TaskSet.of((5, 12, 27), (4, 18, 12))
        assert system_load(ts) == Fraction(35, 66)

    def test_load_equal_to_utilization(self):
        """Step 3's other outcome: every window ratio stays at or below
        the long-run rate (implicit deadlines), LOAD == U exactly."""
        from fractions import Fraction
        ts = TaskSet.of((3, 10, 10), (2, 5, 5))
        assert system_load(ts) == Fraction(7, 10)

    def test_hyperperiod_scale_decision_refused(self):
        """Sets whose LOAD > U decision needs a hyperperiod-scale scan
        raise instead of hanging (documented limit)."""
        ts = TaskSet.of(
            (2505, 33808, 37048),
            (775, 26408, 33098),
            (13633, 29935, 30256),
            (2423, 17755, 19289),
            (22027, 72177, 97530),
            (100, 11288, 14434),
        )
        with pytest.raises(ValueError, match="exact_decision_limit"):
            system_load(ts)


class TestScaledWcets:
    def test_speed_scaling_divides_demand(self, simple_taskset):
        scaled = scaled_wcets(simple_taskset, 2)
        assert scaled[0].wcet == 1  # 2 / 2

    def test_invalid_speed(self, simple_taskset):
        with pytest.raises(ValueError):
            scaled_wcets(simple_taskset, 0)

    def test_load_is_exact_speed_threshold(self, rng):
        """At speed = LOAD the system is feasible; just below, it is not."""
        checked = 0
        for _ in range(120):
            ts = random_feasible_candidate(rng)
            load = system_load(ts)
            if load == 0 or load > 1:
                continue
            at = processor_demand_test(scaled_wcets(ts, load))
            assert at.is_feasible, ts.summary()
            below = processor_demand_test(
                scaled_wcets(ts, Fraction(load) * Fraction(99, 100))
            )
            assert not below.is_feasible, ts.summary()
            checked += 1
        assert checked > 40

"""Unit tests for the metrics registry (repro.obs.metrics)."""

import math

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    ITERATION_BUCKETS,
    MetricsRegistry,
    is_enabled,
    registry,
    set_enabled,
)


@pytest.fixture
def fresh():
    """A private registry so tests never fight over the global one."""
    return MetricsRegistry()


class TestCounters:
    def test_inc_and_value(self, fresh):
        c = fresh.counter("t_total", "help")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_labeled_children_are_independent(self, fresh):
        c = fresh.counter("t_total", labelnames=("test",))
        c.labels("qpa").inc()
        c.labels("qpa").inc()
        c.labels("pda").inc()
        assert c.labels("qpa").value == 2
        assert c.labels("pda").value == 1

    def test_labels_cache_returns_same_child(self, fresh):
        c = fresh.counter("t_total", labelnames=("test",))
        assert c.labels("qpa") is c.labels("qpa")
        assert c.labels(test="qpa") is c.labels("qpa")

    def test_label_arity_mismatch_raises(self, fresh):
        c = fresh.counter("t_total", labelnames=("a", "b"))
        with pytest.raises(ValueError, match="2 label"):
            c.labels("only-one")

    def test_reset_zeroes_every_child(self, fresh):
        c = fresh.counter("t_total", labelnames=("test",))
        c.labels("x").inc(3)
        c.reset()
        assert c.labels("x").value == 0


class TestGauges:
    def test_set_inc_dec(self, fresh):
        g = fresh.gauge("t_depth")
        g.set(10)
        g.inc()
        g.dec(4)
        assert g.value == 7


class TestHistograms:
    def test_observe_lands_in_right_bucket(self, fresh):
        h = fresh.histogram("t_seconds", buckets=(1, 10, 100))
        h.observe(5)
        h.observe(5)
        h.observe(500)
        assert h.count == 3
        assert h.sum == 510
        series = fresh.snapshot()["t_seconds"]["series"][0]
        by_le = {b["le"]: b["count"] for b in series["buckets"]}
        assert by_le[1] == 0
        assert by_le[10] == 2
        assert by_le[100] == 2
        assert by_le["+Inf"] == 3

    def test_buckets_are_cumulative_and_monotone(self, fresh):
        h = fresh.histogram("t_seconds", buckets=DEFAULT_BUCKETS)
        for value in (0.00002, 0.003, 0.003, 2.0, 99.0):
            h.observe(value)
        series = fresh.snapshot()["t_seconds"]["series"][0]
        counts = [b["count"] for b in series["buckets"]]
        assert counts == sorted(counts)
        assert counts[-1] == series["count"] == 5

    def test_boundary_value_is_inclusive(self, fresh):
        h = fresh.histogram("t_it", buckets=ITERATION_BUCKETS)
        h.observe(4)  # exactly on the le=4 bound
        series = fresh.snapshot()["t_it"]["series"][0]
        by_le = {b["le"]: b["count"] for b in series["buckets"]}
        assert by_le[4] == 1
        assert by_le[1] == 0


class TestRegistration:
    def test_idempotent_same_shape_returns_live_family(self, fresh):
        a = fresh.counter("t_total", "first", labelnames=("k",))
        b = fresh.counter("t_total", "second", labelnames=("k",))
        assert a is b

    def test_kind_mismatch_raises(self, fresh):
        fresh.counter("t_total")
        with pytest.raises(ValueError, match="already registered"):
            fresh.gauge("t_total")

    def test_label_mismatch_raises(self, fresh):
        fresh.counter("t_total", labelnames=("a",))
        with pytest.raises(ValueError, match="already registered"):
            fresh.counter("t_total", labelnames=("b",))

    def test_invalid_metric_name_raises(self, fresh):
        with pytest.raises(ValueError, match="invalid metric name"):
            fresh.counter("9starts-with-digit")

    def test_invalid_label_name_raises(self, fresh):
        with pytest.raises(ValueError, match="invalid label name"):
            fresh.counter("t_total", labelnames=("bad-label",))


class TestKillSwitch:
    def test_disabled_mutations_are_noops(self, fresh):
        c = fresh.counter("t_total")
        g = fresh.gauge("t_gauge")
        h = fresh.histogram("t_hist")
        previous = set_enabled(False)
        try:
            c.inc()
            g.set(5)
            h.observe(1.0)
            assert c.value == 0
            assert g.value == 0
            assert h.count == 0
        finally:
            set_enabled(previous)

    def test_set_enabled_returns_previous_state(self):
        first = set_enabled(False)
        try:
            assert is_enabled() is False
            assert set_enabled(first) is False
        finally:
            set_enabled(first)


class TestSnapshotShape:
    def test_snapshot_is_json_able_and_sorted(self, fresh):
        fresh.counter("t_b_total", "b help").inc()
        fresh.counter("t_a_total", "a help", labelnames=("k",)).labels("v").inc()
        snap = fresh.snapshot()
        assert list(snap) == sorted(snap)
        a = snap["t_a_total"]
        assert a["type"] == "counter"
        assert a["help"] == "a help"
        assert a["series"] == [{"labels": {"k": "v"}, "value": 1}]


class TestExposition:
    """Golden parse of the Prometheus text format (0.0.4)."""

    def test_counter_and_gauge_lines(self, fresh):
        fresh.counter("t_total", "Things counted.").inc(3)
        fresh.gauge("t_depth", "Queue depth.", labelnames=("q",)).labels(
            "main"
        ).set(2)
        text = fresh.exposition()
        assert "# HELP t_total Things counted.\n# TYPE t_total counter\nt_total 3\n" in text
        assert 't_depth{q="main"} 2' in text

    def test_histogram_exposition_structure(self, fresh):
        h = fresh.histogram("t_seconds", "Elapsed.", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        lines = fresh.exposition().splitlines()
        assert "# TYPE t_seconds histogram" in lines
        assert 't_seconds_bucket{le="0.1"} 1' in lines
        assert 't_seconds_bucket{le="1"} 2' in lines
        assert 't_seconds_bucket{le="+Inf"} 3' in lines
        assert "t_seconds_count 3" in lines
        sum_line = next(l for l in lines if l.startswith("t_seconds_sum"))
        assert math.isclose(float(sum_line.split()[1]), 5.55)

    def test_label_values_are_escaped(self, fresh):
        c = fresh.counter("t_total", labelnames=("path",))
        c.labels('a"b\\c\nd').inc()
        text = fresh.exposition()
        assert 't_total{path="a\\"b\\\\c\\nd"} 1' in text

    def test_every_sample_line_parses(self, fresh):
        fresh.counter("t_a_total", "a", labelnames=("k",)).labels("x").inc()
        fresh.histogram("t_b_seconds", "b").observe(0.2)
        fresh.gauge("t_c").set(-1.5)
        for line in fresh.exposition().splitlines():
            if line.startswith("#"):
                kind, name = line.split()[1:3]
                assert kind in ("HELP", "TYPE")
                continue
            metric, value = line.rsplit(" ", 1)
            float(value)  # every sample value is a number
            assert metric[0].isalpha() or metric[0] == "_"

    def test_empty_registry_renders_empty(self, fresh):
        assert fresh.exposition() == ""


class TestGlobalRegistry:
    def test_module_helpers_hit_the_global_registry(self):
        from repro.obs import counter

        c = counter("repro_test_global_total", "scratch")
        assert registry().get("repro_test_global_total") is c

"""Unit tests for the resource sampler (repro.obs.sampler)."""

import time

import pytest

from repro.obs import ResourceSampler, registry, sample_process


class TestSampleProcess:
    def test_sample_carries_the_core_numbers(self):
        sample = sample_process()
        assert sample["threads"] >= 1
        assert sample["cpu_user_seconds"] >= 0
        assert sample["max_rss_bytes"] > 0

    def test_sample_updates_gauges(self):
        sample = sample_process()
        gauges = registry()
        assert gauges.get("repro_process_threads").value == sample["threads"]
        assert (
            gauges.get("repro_process_max_rss_bytes").value
            == sample["max_rss_bytes"]
        )

    def test_samples_counter_advances(self):
        counter = registry().get("repro_resource_samples_total")
        before = counter.value
        sample_process()
        assert counter.value == before + 1


class TestResourceSampler:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            ResourceSampler(interval=0)

    def test_start_stop_lifecycle(self):
        sampler = ResourceSampler(interval=60.0, emit_events=False)
        assert sampler.running is False
        sampler.start()
        try:
            assert sampler.running is True
            assert sampler.start() is sampler  # idempotent
        finally:
            sampler.stop()
        assert sampler.running is False
        sampler.stop()  # stopping twice is a no-op

    def test_samples_immediately_on_start(self):
        counter = registry().get("repro_resource_samples_total")
        before = counter.value
        sampler = ResourceSampler(interval=60.0, emit_events=False)
        sampler.start()
        try:
            deadline = time.time() + 5.0
            while counter.value == before and time.time() < deadline:
                time.sleep(0.01)
            assert counter.value > before
        finally:
            sampler.stop()

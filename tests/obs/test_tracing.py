"""Unit tests for tracing spans (repro.obs.tracing)."""

from repro.obs import (
    current_span,
    event_log,
    registry,
    set_enabled,
    set_span_events,
    span,
)


def _span_count(name):
    family = registry().get("repro_span_seconds")
    return family.labels(name).count


class TestSpans:
    def test_span_records_duration_into_histogram(self):
        before = _span_count("test.scope")
        with span("test.scope") as handle:
            pass
        assert _span_count("test.scope") == before + 1
        assert handle.duration is not None
        assert handle.duration >= 0

    def test_nesting_links_parent_and_depth(self):
        with span("test.outer") as outer:
            assert current_span() is outer
            assert outer.parent is None
            assert outer.depth == 0
            with span("test.inner", k="v") as inner:
                assert current_span() is inner
                assert inner.parent is outer
                assert inner.depth == 1
                assert inner.attrs == {"k": "v"}
            assert current_span() is outer
        assert current_span() is None

    def test_duration_recorded_on_exception(self):
        before = _span_count("test.crash")
        try:
            with span("test.crash"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert _span_count("test.crash") == before + 1
        assert current_span() is None

    def test_disabled_span_yields_none(self):
        previous = set_enabled(False)
        try:
            with span("test.disabled") as handle:
                assert handle is None
        finally:
            set_enabled(previous)


class TestSpanEvents:
    def test_events_off_by_default(self):
        before = event_log().last_seq
        with span("test.quiet"):
            pass
        assert event_log().last_seq == before

    def test_emit_event_opt_in_per_span(self):
        with span("test.outer"):
            with span("test.loud", emit_event=True, tag=7):
                pass
        events, _ = event_log().since(0)
        last = [e for e in events if e.name == "test.loud"][-1]
        assert last.category == "trace"
        assert last.payload["parent"] == "test.outer"
        assert last.payload["depth"] == 1
        assert last.payload["tag"] == 7
        assert last.payload["duration_seconds"] >= 0

    def test_global_toggle(self):
        previous = set_span_events(True)
        try:
            before = event_log().last_seq
            with span("test.toggled"):
                pass
            assert event_log().last_seq == before + 1
        finally:
            set_span_events(previous)

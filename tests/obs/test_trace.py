"""Unit tests for trace identity, span export, and worker telemetry
(repro.obs.trace)."""

import json

import pytest

from repro.obs import (
    SpanLog,
    capture_worker_baseline,
    collect_worker_telemetry,
    continue_trace,
    current_traceparent,
    event_log,
    format_traceparent,
    merge_worker_telemetry,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    profile_spans,
    registry,
    remote_parent,
    render_profile,
    render_trace_tree,
    set_enabled,
    set_span_export,
    span,
    span_log,
    state_delta,
)


class TestIdentifiers:
    def test_trace_id_shape(self):
        tid = new_trace_id()
        assert len(tid) == 32
        int(tid, 16)

    def test_span_id_shape(self):
        sid = new_span_id()
        assert len(sid) == 16
        int(sid, 16)

    def test_ids_are_unique(self):
        assert len({new_trace_id() for _ in range(64)}) == 64
        assert len({new_span_id() for _ in range(64)}) == 64


class TestTraceparent:
    def test_roundtrip(self):
        tid, sid = new_trace_id(), new_span_id()
        assert parse_traceparent(format_traceparent(tid, sid)) == (tid, sid)

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00-abc-def-01",  # bad lengths
            "00-" + "g" * 32 + "-" + "a" * 16 + "-01",  # non-hex
            "00-" + "0" * 32 + "-" + "a" * 16 + "-01",  # all-zero trace
            "00-" + "a" * 32 + "-" + "0" * 16 + "-01",  # all-zero span
            "ff-" + "a" * 32 + "-" + "b" * 16 + "-01",  # unknown version
            "00-" + "a" * 32 + "-" + "b" * 16,  # missing flags
        ],
    )
    def test_malformed_headers_dropped(self, header):
        assert parse_traceparent(header) is None

    def test_case_insensitive(self):
        header = "00-" + "AB" * 16 + "-" + "CD" * 8 + "-01"
        assert parse_traceparent(header) == ("ab" * 16, "cd" * 8)


class TestSpanIdentity:
    def test_root_span_originates_a_trace(self):
        with span("test.root") as handle:
            assert len(handle.trace_id) == 32
            assert len(handle.span_id) == 16
            assert handle.parent_id is None

    def test_child_inherits_trace_id(self):
        with span("test.outer") as outer:
            with span("test.inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
                assert inner.span_id != outer.span_id

    def test_continue_trace_adopts_remote_parent(self):
        tid, sid = new_trace_id(), new_span_id()
        with continue_trace(format_traceparent(tid, sid)):
            assert remote_parent() == (tid, sid)
            with span("test.continued") as handle:
                assert handle.trace_id == tid
                assert handle.parent_id == sid
        assert remote_parent() is None

    def test_continue_trace_none_shadows_outer_remote(self):
        tid, sid = new_trace_id(), new_span_id()
        with continue_trace(format_traceparent(tid, sid)):
            with continue_trace(None):
                assert remote_parent() is None
                with span("test.fresh") as handle:
                    assert handle.trace_id != tid
                    assert handle.parent_id is None

    def test_local_parent_wins_over_remote(self):
        tid, sid = new_trace_id(), new_span_id()
        with continue_trace(format_traceparent(tid, sid)):
            with span("test.outer") as outer:
                with span("test.inner") as inner:
                    assert inner.parent_id == outer.span_id
                    assert inner.trace_id == tid

    def test_current_traceparent_reflects_open_span(self):
        assert current_traceparent() is None
        with span("test.here") as handle:
            assert current_traceparent() == format_traceparent(
                handle.trace_id, handle.span_id
            )

    def test_current_traceparent_falls_back_to_remote(self):
        tid, sid = new_trace_id(), new_span_id()
        with continue_trace(format_traceparent(tid, sid)):
            assert current_traceparent() == format_traceparent(tid, sid)


class TestSpanExport:
    def test_finished_span_lands_in_log(self):
        cursor = span_log().last_seq
        with span("test.exported", k=3) as handle:
            pass
        records, _ = span_log().since(cursor)
        record = [r for r in records if r["name"] == "test.exported"][-1]
        assert record["trace_id"] == handle.trace_id
        assert record["span_id"] == handle.span_id
        assert record["parent_id"] is None
        assert record["attrs"] == {"k": 3}
        assert record["duration"] >= 0

    def test_export_toggle(self):
        previous = set_span_export(False)
        try:
            cursor = span_log().last_seq
            with span("test.dark"):
                pass
            records, _ = span_log().since(cursor)
            assert not [r for r in records if r["name"] == "test.dark"]
        finally:
            set_span_export(previous)

    def test_disabled_obs_blocks_record(self):
        log = SpanLog()
        previous = set_enabled(False)
        try:
            assert log.record({"name": "x"}) is None
        finally:
            set_enabled(previous)
        assert len(log) == 0


class TestSpanLog:
    def _record(self, log, **extra):
        base = {
            "trace_id": "a" * 32,
            "span_id": new_span_id(),
            "parent_id": None,
            "name": "t",
            "start": 1.0,
            "duration": 0.5,
            "attrs": {},
        }
        base.update(extra)
        return log.record(base)

    def test_since_cursor_discipline(self):
        log = SpanLog(capacity=4)
        for index in range(6):
            self._record(log, name=f"s{index}")
        records, cursor = log.since(0)
        # capacity 4: oldest two evicted, cursor still absolute
        assert [r["name"] for r in records] == ["s2", "s3", "s4", "s5"]
        assert cursor == 6
        more, cursor2 = log.since(cursor)
        assert more == [] and cursor2 == 6

    def test_for_trace_filters(self):
        log = SpanLog()
        self._record(log, trace_id="b" * 32, name="other")
        self._record(log, name="mine")
        spans = log.for_trace("a" * 32)
        assert [r["name"] for r in spans] == ["mine"]
        assert log.for_trace("c" * 32) == []

    def test_trace_summaries_rollup(self):
        log = SpanLog()
        self._record(log, name="child", start=2.0, duration=0.2,
                     parent_id="f" * 16)
        self._record(log, name="root", start=1.0, duration=0.9)
        self._record(log, trace_id="b" * 32, name="late", start=5.0,
                     duration=0.1)
        summaries = log.trace_summaries()
        assert [s["trace"] for s in summaries] == ["b" * 32, "a" * 32]
        rollup = summaries[1]
        assert rollup["spans"] == 2
        assert rollup["root"] == "root"  # earliest start wins
        assert rollup["duration"] == pytest.approx(0.9)

    def test_ingest_preserves_identity_tags_worker(self):
        log = SpanLog()
        original = {
            "trace_id": "a" * 32,
            "span_id": "b" * 16,
            "parent_id": "c" * 16,
            "name": "remote",
            "start": 3.0,
            "duration": 0.25,
            "attrs": {"k": 1},
            "seq": 999,
        }
        log.ingest(original, worker="1234")
        records, _ = log.since(0)
        merged = records[-1]
        assert merged["span_id"] == "b" * 16
        assert merged["start"] == 3.0
        assert merged["attrs"] == {"k": 1, "worker": "1234"}
        assert merged["seq"] == 1  # re-assigned locally
        assert original["attrs"] == {"k": 1}  # input not mutated

    def test_journal_writes_jsonl(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        log = SpanLog()
        log.attach_journal(str(path))
        try:
            self._record(log, name="journaled")
        finally:
            log.detach_journal()
        lines = path.read_text().splitlines()
        assert json.loads(lines[-1])["name"] == "journaled"
        assert log.journal_path is None


class TestWorkerTelemetry:
    def test_collect_and_merge_roundtrip(self):
        counter = registry().counter(
            "test_trace_merge_total", "merge test counter", ["side"]
        )
        baseline = capture_worker_baseline()
        counter.labels("worker").inc(3)
        with span("test.worker.unit"):
            pass
        telemetry = collect_worker_telemetry(baseline, worker="w1")
        assert telemetry["worker"] == "w1"
        assert telemetry["metrics"]["test_trace_merge_total"]["series"] == [
            [["worker"], 3]
        ]
        names = [r["name"] for r in telemetry["spans"]]
        assert "test.worker.unit" in names

        before = counter.labels("worker").value
        cursor = span_log().last_seq
        merge_worker_telemetry(telemetry)
        assert counter.labels("worker").value == before + 3
        merged, _ = span_log().since(cursor)
        replayed = [r for r in merged if r["name"] == "test.worker.unit"]
        assert replayed and replayed[0]["attrs"]["worker"] == "w1"

    def test_merge_is_defensive(self):
        # Malformed documents must never raise into the result path.
        merge_worker_telemetry(None)
        merge_worker_telemetry({})
        merge_worker_telemetry(
            {"worker": "x", "metrics": "bogus", "events": 7, "spans": "no"}
        )
        merge_worker_telemetry(
            {"metrics": {}, "events": ["notadict"], "spans": [42]}
        )

    def test_histogram_delta_merge(self):
        histogram = registry().histogram(
            "test_trace_merge_seconds",
            "merge test histogram",
            buckets=(0.1, 1.0),
        )
        baseline = capture_worker_baseline()
        histogram.observe(0.05)
        histogram.observe(5.0)
        telemetry = collect_worker_telemetry(baseline, worker="w2")
        before_count = histogram.count
        before_sum = histogram.sum
        merge_worker_telemetry(telemetry)
        assert histogram.count == before_count + 2
        assert histogram.sum == pytest.approx(before_sum + 5.05)

    def test_state_delta_drops_unchanged_series(self):
        counter = registry().counter(
            "test_trace_delta_total", "delta test counter", ["k"]
        )
        counter.labels("static").inc()
        before = registry().export_state()
        counter.labels("moved").inc(2)
        delta = state_delta(before, registry().export_state())
        series = dict(
            (tuple(key), value)
            for key, value in delta["test_trace_delta_total"]["series"]
        )
        assert series == {("moved",): 2}

    def test_event_merge_tags_worker(self):
        baseline = capture_worker_baseline()
        event_log().emit("test", "trace.merge.event", payload={"n": 1})
        telemetry = collect_worker_telemetry(baseline, worker="w3")
        cursor = event_log().last_seq
        merge_worker_telemetry(telemetry)
        events, _ = event_log().since(cursor)
        match = [e for e in events if e.name == "trace.merge.event"]
        assert match and match[-1].payload["worker"] == "w3"


def _span_record(name, span_id, parent_id, duration, trace="a" * 32):
    return {
        "trace_id": trace,
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "start": 0.0,
        "duration": duration,
        "attrs": {},
    }


class TestProfiler:
    def test_self_time_subtracts_direct_children(self):
        spans = [
            _span_record("root", "1" * 16, None, 1.0),
            _span_record("mid", "2" * 16, "1" * 16, 0.7),
            _span_record("leaf", "3" * 16, "2" * 16, 0.4),
        ]
        report = profile_spans(spans)
        rows = {r["span"]: r for r in report["rows"]}
        assert rows["root"]["self_seconds"] == pytest.approx(0.3)
        assert rows["mid"]["self_seconds"] == pytest.approx(0.3)
        assert rows["leaf"]["self_seconds"] == pytest.approx(0.4)
        assert report["wall_seconds"] == pytest.approx(1.0)
        assert report["traces"] == 1
        # sorted by self time, descending
        assert report["rows"][0]["span"] == "leaf"

    def test_self_time_floored_at_zero(self):
        spans = [
            _span_record("root", "1" * 16, None, 0.1),
            _span_record("child", "2" * 16, "1" * 16, 0.5),
        ]
        rows = {r["span"]: r for r in profile_spans(spans)["rows"]}
        assert rows["root"]["self_seconds"] == 0.0

    def test_dangling_parent_counts_as_root(self):
        spans = [_span_record("orphan", "9" * 16, "f" * 16, 0.2)]
        report = profile_spans(spans)
        assert report["wall_seconds"] == pytest.approx(0.2)

    def test_render_profile_empty(self):
        assert "no spans recorded" in render_profile(profile_spans([]))

    def test_render_profile_table(self):
        text = render_profile(
            profile_spans([_span_record("kernel.qpa", "1" * 16, None, 0.5)])
        )
        assert "kernel.qpa" in text
        assert "self(s)" in text


class TestRenderTree:
    def test_tree_indents_children(self):
        spans = [
            _span_record("root", "1" * 16, None, 1.0),
            _span_record("child", "2" * 16, "1" * 16, 0.5),
        ]
        lines = render_trace_tree(spans).splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")

    def test_dangling_parent_renders_as_root(self):
        spans = [_span_record("orphan", "2" * 16, "f" * 16, 0.5)]
        lines = render_trace_tree(spans).splitlines()
        assert lines[0].startswith("orphan")

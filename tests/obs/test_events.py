"""Unit tests for the structured event log (repro.obs.events)."""

import json

import pytest

from repro.obs import Event, EventLog, emit, event_log, set_enabled


class TestEvent:
    def test_round_trip(self):
        event = Event(seq=3, ts=1.5, category="service", name="job.done",
                      payload={"job": "j1"})
        assert Event.from_dict(event.to_dict()) == event

    def test_from_dict_tolerates_missing_fields(self):
        event = Event.from_dict({})
        assert event.seq == 0
        assert event.payload == {}


class TestRingBuffer:
    def test_emit_assigns_monotonic_seq(self):
        log = EventLog(capacity=8)
        first = log.emit("service", "a")
        second = log.emit("service", "b")
        assert (first.seq, second.seq) == (1, 2)

    def test_since_pages_oldest_first(self):
        log = EventLog(capacity=8)
        for i in range(5):
            log.emit("service", f"e{i}")
        events, cursor = log.since(0, limit=3)
        assert [e.name for e in events] == ["e0", "e1", "e2"]
        assert cursor == 3
        events, cursor = log.since(cursor)
        assert [e.name for e in events] == ["e3", "e4"]
        assert cursor == 5

    def test_cursor_survives_eviction(self):
        log = EventLog(capacity=3)
        for i in range(10):
            log.emit("service", f"e{i}")
        events, cursor = log.since(0)
        # The evicted prefix is gone but seq numbering is absolute.
        assert [e.seq for e in events] == [8, 9, 10]
        assert cursor == 10

    def test_empty_page_returns_tail_cursor(self):
        log = EventLog(capacity=3)
        for i in range(4):
            log.emit("service", f"e{i}")
        events, cursor = log.since(99)
        assert events == []
        assert cursor == 4  # resume at the tail, not at the stale cursor

    def test_clear_keeps_the_cursor_advancing(self):
        log = EventLog(capacity=8)
        log.emit("service", "a")
        log.clear()
        assert len(log) == 0
        assert log.emit("service", "b").seq == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)


class TestDisabled:
    def test_disabled_emit_returns_none_and_records_nothing(self):
        log = EventLog(capacity=8)
        previous = set_enabled(False)
        try:
            assert log.emit("service", "a") is None
            assert len(log) == 0
            assert log.last_seq == 0
        finally:
            set_enabled(previous)


class TestJournal:
    def test_journal_lines_are_parseable_events(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        log = EventLog(capacity=8)
        log.attach_journal(str(path))
        log.emit("service", "job.started", job="j1")
        log.emit("kernel", "kernel.rescale", factor=2)
        log.detach_journal()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        events = [Event.from_dict(json.loads(line)) for line in lines]
        assert events[0].name == "job.started"
        assert events[1].payload == {"factor": 2}

    def test_rotation_shifts_backups(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        log = EventLog(capacity=8)
        log.attach_journal(str(path), max_bytes=200, backups=2)
        for i in range(50):
            log.emit("service", "event", index=i, padding="x" * 40)
        log.detach_journal()
        backups = sorted(p.name for p in tmp_path.iterdir())
        assert "journal.jsonl.1" in backups
        assert "journal.jsonl.2" in backups
        assert "journal.jsonl.3" not in backups
        # Every retained file holds valid JSONL.
        for name in backups:
            for line in (tmp_path / name).read_text().splitlines():
                json.loads(line)

    def test_rotation_without_backups_truncates(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        log = EventLog(capacity=8)
        log.attach_journal(str(path), max_bytes=120, backups=0)
        for i in range(20):
            log.emit("service", "event", index=i)
        log.detach_journal()
        assert sorted(p.name for p in tmp_path.iterdir()) == ["journal.jsonl"]

    def test_reattach_appends(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        log = EventLog(capacity=8)
        log.attach_journal(str(path))
        log.emit("service", "a")
        log.detach_journal()
        log.attach_journal(str(path))
        log.emit("service", "b")
        log.detach_journal()
        assert len(path.read_text().splitlines()) == 2

    def test_journal_path_property(self, tmp_path):
        log = EventLog(capacity=8)
        assert log.journal_path is None
        log.attach_journal(str(tmp_path / "j.jsonl"))
        assert log.journal_path == str(tmp_path / "j.jsonl")
        log.detach_journal()
        assert log.journal_path is None


class TestGlobalLog:
    def test_emit_helper_hits_the_global_log(self):
        before = event_log().last_seq
        event = emit("service", "test.marker")
        assert event is not None
        assert event.seq == before + 1
        assert event_log().last_seq == event.seq

"""Overhead guard: instrumentation must stay within noise of off.

The hot seams (kernel primitives, engine dispatch, admission stages)
pay one flag check + pre-bound handle per event.  This test A/Bs a warm
QPA/PDA loop with observability enabled vs ``set_enabled(False)`` and
fails if the instrumented run is far outside the disabled one.  The
bound is deliberately generous (2x on min-of-N): the point is to catch
an accidental hot-path regression (string formatting, per-call label
resolution, journal writes), not to benchmark — the benchmarks/ gate
does the precise job.
"""

import time

from repro.engine import analyze, clear_context_cache
from repro.generation import generate_taskset
from repro.obs import set_enabled


def _min_loop_seconds(tasks, test, repeats=5, inner=20):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            analyze(tasks, test)
        best = min(best, time.perf_counter() - start)
    return best


def test_instrumented_warm_analysis_within_noise_of_disabled():
    tasks = generate_taskset(n=20, utilization=0.9, seed=42)
    clear_context_cache()
    # Warm everything (context cache, code paths) before either side.
    for test in ("qpa", "processor-demand"):
        analyze(tasks, test)

    previous = set_enabled(True)
    try:
        enabled = {
            test: _min_loop_seconds(tasks, test)
            for test in ("qpa", "processor-demand")
        }
        set_enabled(False)
        disabled = {
            test: _min_loop_seconds(tasks, test)
            for test in ("qpa", "processor-demand")
        }
    finally:
        set_enabled(previous)

    for test in enabled:
        # Sub-millisecond loops are scheduler noise either way; only
        # judge the ratio when the measurement is meaningful.
        if max(enabled[test], disabled[test]) < 0.001:
            continue
        assert enabled[test] <= disabled[test] * 2.0 + 0.002, (
            f"{test}: instrumented {enabled[test]:.6f}s vs "
            f"disabled {disabled[test]:.6f}s"
        )

"""Concurrency tests: registry and journal under thread pressure."""

import json
import threading

from repro.obs import EventLog, MetricsRegistry


def _hammer(threads, target):
    workers = [threading.Thread(target=target, args=(i,)) for i in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()


class TestRegistryConcurrency:
    def test_counter_increments_are_not_lost(self):
        reg = MetricsRegistry()
        counter = reg.counter("t_total", labelnames=("worker",))
        threads, per_thread = 8, 2000

        def work(index):
            child = counter.labels(str(index % 4))
            for _ in range(per_thread):
                child.inc()

        _hammer(threads, work)
        total = sum(child.value for _, child in counter.children())
        assert total == threads * per_thread

    def test_histogram_observations_are_not_lost(self):
        reg = MetricsRegistry()
        hist = reg.histogram("t_seconds", buckets=(1, 10, 100))
        threads, per_thread = 8, 1000

        def work(index):
            for i in range(per_thread):
                hist.observe(i % 120)

        _hammer(threads, work)
        assert hist.count == threads * per_thread
        series = reg.snapshot()["t_seconds"]["series"][0]
        assert series["buckets"][-1]["count"] == threads * per_thread

    def test_concurrent_registration_yields_one_family(self):
        reg = MetricsRegistry()
        seen = []

        def work(index):
            seen.append(reg.counter("t_total", labelnames=("k",)))

        _hammer(16, work)
        assert len({id(f) for f in seen}) == 1


class TestJournalConcurrency:
    def test_rotation_under_concurrent_emission(self, tmp_path):
        """Many threads emitting through a tiny journal cap: every
        retained line stays valid JSONL and no emission is dropped from
        the sequence (the ring keeps counting even while files rotate).
        """
        path = tmp_path / "journal.jsonl"
        log = EventLog(capacity=64)
        log.attach_journal(str(path), max_bytes=500, backups=3)
        threads, per_thread = 8, 300

        def work(index):
            for i in range(per_thread):
                log.emit("service", "event", worker=index, i=i)

        _hammer(threads, work)
        log.detach_journal()
        assert log.last_seq == threads * per_thread
        files = sorted(tmp_path.iterdir())
        assert files, "rotation should leave files behind"
        sequences = []
        for file in files:
            for line in file.read_text(encoding="utf-8").splitlines():
                document = json.loads(line)  # no torn lines
                sequences.append(document["seq"])
        assert len(sequences) == len(set(sequences))  # no duplicated writes

"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import random

import pytest

from repro.model import SporadicTask, TaskSet


@pytest.fixture
def rng() -> random.Random:
    """Deterministic RNG; reseed per test for reproducibility."""
    return random.Random(0xC0FFEE)


def random_taskset(
    rng: random.Random,
    max_tasks: int = 6,
    max_period: int = 30,
    deadline_slack: int = 5,
) -> TaskSet:
    """Small random integer task set (may exceed U = 1 — callers filter).

    Kept as a plain helper (not a fixture) so tests can draw many sets
    from one rng.
    """
    n = rng.randint(1, max_tasks)
    tasks = []
    for _ in range(n):
        period = rng.randint(2, max_period)
        wcet = rng.randint(1, period)
        deadline = rng.randint(1, period + deadline_slack)
        tasks.append(SporadicTask(wcet=wcet, deadline=deadline, period=period))
    return TaskSet(tasks)


def random_feasible_candidate(rng: random.Random, **kwargs) -> TaskSet:
    """Random set with U <= 1 (still possibly infeasible)."""
    while True:
        ts = random_taskset(rng, **kwargs)
        if ts.utilization <= 1:
            return ts


@pytest.fixture
def simple_taskset() -> TaskSet:
    """A small feasible constrained-deadline set used across tests."""
    return TaskSet.of((2, 6, 10), (3, 11, 16), (5, 25, 25))


@pytest.fixture
def infeasible_taskset() -> TaskSet:
    """U = 1 but dbf(1) = 2 > 1: infeasible with an easy witness."""
    return TaskSet.of((1, 1, 2), (1, 1, 2))

"""Unit tests for the EDF+SRP blocking extension."""

import pytest

from repro.extensions import blocking_function, srp_blocking_test
from repro.model import TaskSet, task
from repro.result import Verdict


def named_set():
    return TaskSet(
        [
            task(2, 6, 10, name="fast"),
            task(3, 11, 16, name="mid"),
            task(5, 25, 25, name="slow"),
        ]
    )


class TestBlockingFunction:
    def test_staircase_shape(self):
        ts = named_set()
        b = blocking_function(ts, {"slow": 4, "mid": 2})
        # Below D=11 both mid and slow can block: max(2, 4) = 4.
        assert b(6) == 4
        # Between 11 and 25 only slow's section blocks.
        assert b(11) == 4
        assert b(24) == 4
        # At and beyond the largest deadline nothing blocks.
        assert b(25) == 0
        assert b(100) == 0

    def test_unknown_tasks_use_no_resources(self):
        b = blocking_function(named_set(), {})
        assert b(1) == 0

    def test_validation(self):
        ts = named_set()
        with pytest.raises(ValueError):
            blocking_function(ts, {"slow": -1})
        with pytest.raises(ValueError):
            blocking_function(ts, {"slow": 6})  # exceeds WCET 5
        unnamed = TaskSet.of((1, 2, 3))
        with pytest.raises(ValueError):
            blocking_function(unnamed, {"": 1})


class TestSrpTest:
    def test_no_resources_reduces_to_plain_demand(self):
        ts = named_set()
        r = srp_blocking_test(ts, {})
        assert r.verdict is Verdict.FEASIBLE

    def test_blocking_can_break_a_tight_deadline(self):
        # fast's deadline at 6 has slack 4 (dbf(6) = 2): a section of 4
        # still fits, 5 does not (it exceeds mid's WCET? use slow: 5).
        ts = named_set()
        assert srp_blocking_test(ts, {"slow": 4}).verdict is Verdict.FEASIBLE
        r = srp_blocking_test(ts, {"slow": 5})
        assert r.verdict is Verdict.UNKNOWN
        assert r.witness is not None and not r.witness.exact

    def test_infeasible_without_blocking_is_exact(self):
        ts = TaskSet([task(1, 1, 2, name="a"), task(1, 1, 2, name="b")])
        r = srp_blocking_test(ts, {"a": 1})
        assert r.verdict is Verdict.INFEASIBLE
        assert r.witness.exact

    def test_overload(self):
        ts = TaskSet([task(3, 2, 2, name="x")])
        assert srp_blocking_test(ts, {}).verdict is Verdict.INFEASIBLE

    def test_monotone_in_section_length(self):
        ts = named_set()
        verdicts = [
            srp_blocking_test(ts, {"slow": cs}).is_feasible for cs in range(0, 6)
        ]
        # Once blocked, longer sections never help again.
        for earlier, later in zip(verdicts, verdicts[1:]):
            if not earlier:
                assert not later

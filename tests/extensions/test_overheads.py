"""Unit tests for overhead transformations (paper Section 3.5)."""

import pytest

from repro.analysis import processor_demand_test
from repro.extensions import with_context_switch_overhead, with_release_jitter
from repro.extensions.overheads import jittered_components
from repro.model import TaskParameterError, TaskSet, task

from ..conftest import random_feasible_candidate


class TestContextSwitchOverhead:
    def test_inflates_wcet_by_two_switches(self):
        ts = TaskSet.of((2, 6, 10), (3, 11, 16))
        inflated = with_context_switch_overhead(ts, 1)
        assert [t.wcet for t in inflated] == [4, 5]
        assert [t.deadline for t in inflated] == [6, 11]

    def test_zero_cost_tasks_stay_free(self):
        ts = TaskSet.of((0, 5, 5))
        assert with_context_switch_overhead(ts, 2)[0].wcet == 0

    def test_rejects_negative(self):
        with pytest.raises(TaskParameterError):
            with_context_switch_overhead(TaskSet.of((1, 2, 3)), -1)

    def test_overhead_only_hurts(self, rng):
        """Adding switching cost can never turn infeasible feasible."""
        for _ in range(100):
            ts = random_feasible_candidate(rng)
            with_cs = with_context_switch_overhead(ts, 1)
            if with_cs.utilization > 1:
                continue
            before = processor_demand_test(ts).is_feasible
            after = processor_demand_test(with_cs).is_feasible
            if after:
                assert before

    def test_name_preserved(self):
        ts = TaskSet.of((1, 2, 3)).renamed("sys")
        assert with_context_switch_overhead(ts, 1).name == "sys"


class TestReleaseJitter:
    def test_shrinks_demand_window(self):
        comp = with_release_jitter(task(2, 10, 20), 3)
        assert comp.first_deadline == 7
        assert comp.period == 20
        assert comp.wcet == 2

    def test_zero_jitter_identity(self):
        comp = with_release_jitter(task(2, 10, 20), 0)
        assert comp.first_deadline == 10

    def test_rejects_jitter_at_deadline(self):
        with pytest.raises(TaskParameterError):
            with_release_jitter(task(2, 10, 20), 10)
        with pytest.raises(TaskParameterError):
            with_release_jitter(task(2, 10, 20), -1)

    def test_jitter_only_hurts(self, rng):
        for _ in range(100):
            ts = random_feasible_candidate(rng)
            usable = [t for t in ts if t.deadline > 1 and t.wcet > 0]
            if not usable:
                continue
            comps = [with_release_jitter(t, 1) for t in usable]
            if processor_demand_test(comps).is_feasible:
                assert processor_demand_test(TaskSet(usable)).is_feasible

    def test_jittered_components_length_check(self):
        with pytest.raises(ValueError):
            jittered_components([task(1, 5, 5)], [1, 2])

    def test_jittered_components_drops_idle_tasks(self):
        comps = jittered_components([task(0, 5, 5), task(1, 5, 5)], [1, 1])
        assert len(comps) == 1

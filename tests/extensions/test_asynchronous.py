"""Unit tests for the asynchronous (phased) feasibility decision."""

import pytest

from repro.extensions import asynchronous_feasibility
from repro.model import TaskSet, task
from repro.result import Verdict


class TestAsynchronous:
    def test_overload(self):
        r = asynchronous_feasibility(TaskSet.of((3, 2, 2)))
        assert r.verdict is Verdict.INFEASIBLE

    def test_synchronous_acceptance_is_sufficient(self, simple_taskset):
        r = asynchronous_feasibility(simple_taskset)
        assert r.verdict is Verdict.FEASIBLE
        assert r.details["decided_by"] == "synchronous-sufficient"

    def test_phasing_rescues_a_synchronous_miss(self):
        """The classic asynchronous phenomenon: two jobs that collide
        when released together fit perfectly when phased apart."""
        colliding = TaskSet(
            [task(1, 1, 2, name="a"), task(1, 1, 2, name="b")]
        )
        r_sync = asynchronous_feasibility(colliding)
        assert r_sync.verdict is Verdict.INFEASIBLE  # phases 0/0 collide

        phased = TaskSet(
            [task(1, 1, 2, name="a"), task(1, 1, 2, phase=1, name="b")]
        )
        r = asynchronous_feasibility(phased)
        assert r.verdict is Verdict.FEASIBLE
        assert r.details["decided_by"] == "periodic-simulation"

    def test_bad_phasing_detected(self):
        # Two 2-unit jobs with deadline 2 every 4, phased 1 apart: the
        # second job can start only after the first finishes at 2 and
        # misses its deadline at 3.  (Phases 0/2 would be feasible.)
        ts = TaskSet(
            [task(2, 2, 4, name="a"), task(2, 2, 4, phase=1, name="b")]
        )
        r = asynchronous_feasibility(ts)
        assert r.verdict is Verdict.INFEASIBLE
        assert r.details["decided_by"] == "periodic-simulation"

    def test_refuses_huge_windows(self):
        primes = TaskSet(
            [
                task(1, 1, 10_007, phase=1, name="p1"),
                task(1, 1, 10_009, phase=2, name="p2"),
                task(10_000, 10_001, 10_013, name="p3"),
            ]
        )
        with pytest.raises(ValueError, match="max_jobs"):
            asynchronous_feasibility(primes, max_jobs=100)

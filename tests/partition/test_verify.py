"""Tests for the partition verification layer."""

import pytest

from repro.model import TaskSet
from repro.partition import (
    PartitionedSystem,
    Platform,
    agreement,
    pack,
    verify_partition,
)


@pytest.fixture
def feasible_two_core():
    ts = TaskSet.of((2, 6, 10), (3, 11, 16), (5, 25, 25), (4, 8, 8))
    return PartitionedSystem(ts, Platform(2), [0, 0, 0, 1])


@pytest.fixture
def broken_assignment():
    # Both tasks on core 0: dbf(1) = 2 > 1 there; core 1 idles.
    ts = TaskSet.of((1, 1, 2), (1, 1, 2))
    return PartitionedSystem(ts, Platform(2), [0, 0])


class TestVerify:
    def test_both_methods_pass_a_good_assignment(self, feasible_two_core):
        verification = verify_partition(feasible_two_core, method="both")
        assert verification.ok
        assert verification.method == "both"
        assert verification.failing_cores == ()
        for verdict in verification.cores:
            assert verdict.exact is not None
            assert verdict.simulation is not None
        assert all(agreement(verification).values())

    def test_methods_run_selectively(self, feasible_two_core):
        exact_only = verify_partition(feasible_two_core, method="exact")
        assert all(v.simulation is None for v in exact_only.cores)
        sim_only = verify_partition(feasible_two_core, method="simulation")
        assert all(v.exact is None for v in sim_only.cores)
        assert exact_only.ok and sim_only.ok

    def test_bad_core_is_pinpointed(self, broken_assignment):
        verification = verify_partition(broken_assignment, method="both")
        assert not verification.ok
        assert verification.failing_cores == (0,)
        core0 = verification.cores[0]
        assert core0.exact.is_infeasible
        assert core0.simulation.is_infeasible
        assert all(agreement(verification).values())  # methods agree

    def test_incomplete_assignment_never_verifies(self):
        ts = TaskSet.of((1, 4, 4), (1, 4, 4))
        partial = PartitionedSystem(ts, Platform(2), [0, None])
        verification = verify_partition(partial)
        assert not verification.complete
        assert not verification.ok
        # The assigned cores themselves were still checked.
        assert verification.cores[0].exact.is_feasible

    def test_empty_cores_are_vacuously_fine(self, feasible_two_core):
        wide = PartitionedSystem(
            feasible_two_core.tasks, Platform(4),
            list(feasible_two_core.assignment),
        )
        verification = verify_partition(wide)
        assert verification.ok
        assert verification.cores[3].exact is None
        assert verification.cores[3].tasks == 0

    def test_unknown_method_rejected(self, feasible_two_core):
        with pytest.raises(ValueError, match="exact, simulation, both"):
            verify_partition(feasible_two_core, method="psychic")


class TestOracleAgreementOnPackings:
    def test_exact_and_simulation_agree_on_every_heuristic(self):
        ts = TaskSet.of(
            (2, 6, 10), (3, 11, 16), (5, 25, 25), (4, 8, 8),
            (3, 30, 40), (6, 50, 60),
        )
        for heuristic in ("ff", "ffd", "bf", "wf", "nf"):
            result = pack(ts, 3, heuristic, "approx-dbf")
            if not result.success:
                continue
            verification = verify_partition(result.system, method="both")
            assert verification.ok
            assert all(agreement(verification).values())

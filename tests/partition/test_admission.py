"""Unit tests for the admission predicates."""

from fractions import Fraction

import pytest

from repro.engine import clear_context_cache, context_cache_info
from repro.model import TaskSet, task
from repro.partition import admission_names, admission_predicate


@pytest.fixture
def heavy():
    return task(5, 10, 10, name="heavy")  # u = 1/2, tight deadline


class TestFactory:
    def test_unknown_name_lists_builtins_and_registry(self):
        with pytest.raises(ValueError) as err:
            admission_predicate("frobnicate")
        message = str(err.value)
        assert "utilization" in message and "approx-dbf" in message
        assert "processor-demand" in message and "qpa" in message

    def test_admission_names_cover_builtins_and_registry(self):
        names = admission_names()
        assert names[:3] == ("utilization", "approx-dbf", "exact-dbf")
        assert "devi" in names and "all-approx" in names
        # The multiprocessor tests are not usable as per-core admission.
        assert "partitioned-edf" not in names
        assert "global-edf-density" not in names

    def test_epsilon_only_for_approx(self):
        with pytest.raises(ValueError, match="epsilon"):
            admission_predicate("exact-dbf", epsilon=Fraction(1, 5))

    def test_utilization_takes_no_options(self):
        with pytest.raises(ValueError, match="no options"):
            admission_predicate("utilization", bound_method="best")

    def test_registry_test_options_validated_eagerly(self):
        with pytest.raises(ValueError, match="requires option 'level'"):
            admission_predicate("superpos")
        predicate = admission_predicate("superpos", level=3)
        assert predicate.admits((), Fraction(0), task(1, 4, 4))

    @pytest.mark.parametrize(
        "name", ["partitioned-edf", "global-edf-density", "global-edf-gfb"]
    )
    def test_multiprocessor_tests_rejected_as_admission(self, name):
        # A platform-level test run on one core's content would
        # manufacture unsound per-core feasibility proofs.
        with pytest.raises(ValueError, match="unknown admission predicate"):
            admission_predicate(name, cores=2)

    def test_epsilon_encoded_in_name(self):
        predicate = admission_predicate("approx-dbf", epsilon=Fraction(1, 4))
        assert predicate.name == "approx-dbf(eps=1/4)"

    def test_approx_options_validated_at_construction(self):
        # level is derived from epsilon, and bad options fail eagerly
        # with a guided error, not on the first admits() call.
        with pytest.raises(ValueError, match="pass epsilon"):
            admission_predicate("approx-dbf", level=5)
        with pytest.raises(ValueError, match="unknown option.*bogus"):
            admission_predicate("approx-dbf", bogus=1)
        with pytest.raises(ValueError, match="unknown option.*bogus"):
            admission_predicate("exact-dbf", bogus=1)


class TestSemantics:
    def test_utilization_gate(self, heavy):
        predicate = admission_predicate("utilization")
        assert predicate.admits((), Fraction(0), heavy)
        assert predicate.admits((heavy,), Fraction(1, 2), heavy)
        assert not predicate.admits((heavy,), Fraction(3, 4), heavy)
        assert predicate.calls == 3
        assert not predicate.proves_feasibility

    def test_demand_admissions_reject_what_utilization_accepts(self):
        # Two tasks, each u = 1/2 but with deadlines at half the
        # period: dbf(5) = 10 > 5.  The utilization gate waves the pair
        # through; both demand-based predicates refuse.
        a = task(5, 5, 10, name="a")
        b = task(5, 5, 10, name="b")
        gate = admission_predicate("utilization")
        approx = admission_predicate("approx-dbf")
        exact = admission_predicate("exact-dbf")
        assert gate.admits((a,), Fraction(1, 2), b)
        assert not approx.admits((a,), Fraction(1, 2), b)
        assert not exact.admits((a,), Fraction(1, 2), b)
        assert approx.proves_feasibility and exact.proves_feasibility

    def test_overload_short_circuits_before_any_test(self, heavy):
        predicate = admission_predicate("exact-dbf")
        clear_context_cache()
        assert not predicate.admits(
            (heavy, heavy), Fraction(9, 8), heavy
        )
        # The gate rejected before normalizing: no context was built.
        assert context_cache_info()["misses"] == 0

    def test_accretion_reuses_the_context_cache(self):
        # Probing the same (core content, candidate) pair twice — as
        # min-core searches do across probes — must hit the LRU.
        predicate = admission_predicate("approx-dbf")
        core = (task(2, 6, 10), task(3, 11, 16))
        candidate = task(5, 25, 25)
        clear_context_cache()
        predicate.admits(core, Fraction(1, 2), candidate)
        misses_first = context_cache_info()["misses"]
        predicate.admits(core, Fraction(1, 2), candidate)
        info = context_cache_info()
        assert info["misses"] == misses_first
        assert info["hits"] >= 1

    def test_devi_as_admission_is_a_registry_predicate(self):
        predicate = admission_predicate("devi")
        ts = TaskSet.of((2, 6, 10), (3, 11, 16))
        assert predicate.admits(tuple(ts), Fraction(0), task(1, 50, 50))
        assert predicate.proves_feasibility

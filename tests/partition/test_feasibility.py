"""Engine-facing partitioned/global tests, batching, and figM plumbing."""

from fractions import Fraction

import pytest

from repro import analyze
from repro.engine import AnalysisRequest, BatchRunner
from repro.experiments import FigMConfig, render_figm, run_figm
from repro.generation import ma_shin_taskset
from repro.model import TaskSet, task
from repro.partition import (
    global_density_test,
    global_gfb_test,
    partitioned_edf_test,
)
from repro.result import Verdict


def implicit(*utils, period=100):
    return TaskSet(
        [task(round(u * period), period, period, name=f"t{i}")
         for i, u in enumerate(utils)]
    )


class TestPartitionedEdf:
    def test_feasible_with_proof_bearing_admission(self):
        result = partitioned_edf_test(ma_shin_taskset(), cores=2)
        assert result.verdict is Verdict.FEASIBLE
        assert result.test_name == "partitioned-edf"
        assert result.details["cores"] == 2
        assert None not in result.details["assignment"]
        assert result.iterations > 0

    def test_overload_is_infeasible(self):
        ts = implicit(0.9, 0.9, 0.9)  # U = 2.7 > 2
        result = partitioned_edf_test(ts, cores=2)
        assert result.is_infeasible
        assert "U > m" in result.details["reason"]

    def test_sequential_overrun_is_infeasible_on_any_core_count(self):
        # C > D: the job cannot finish even alone; every multiprocessor
        # test must return INFEASIBLE, not UNKNOWN.
        ts = TaskSet.of((5, 3, 10), (1, 50, 100))
        for test in (partitioned_edf_test, global_density_test):
            result = test(ts, cores=8)
            assert result.is_infeasible, test.__name__
            assert "C > D" in result.details["reason"]
        implicit_overrun = TaskSet.of((15, 10, 10))  # C > D = T
        assert global_gfb_test(implicit_overrun, cores=8).is_infeasible

    def test_overload_still_validates_options(self):
        ts = implicit(0.9, 0.9, 0.9)
        with pytest.raises(ValueError, match="unknown admission"):
            partitioned_edf_test(ts, cores=2, admission="bogus")

    def test_packing_failure_is_unknown_not_infeasible(self):
        ts = implicit(0.6, 0.6, 0.6)  # U = 1.8 <= 2 but unsplittable ff
        result = partitioned_edf_test(ts, cores=2, heuristic="ff",
                                      admission="utilization")
        assert result.verdict is Verdict.UNKNOWN
        assert result.details["unassigned"] == (2,)

    def test_utilization_admission_proves_only_implicit_deadlines(self):
        implicit_set = implicit(0.5, 0.5, 0.5)
        constrained = TaskSet.of((5, 50, 100), (5, 50, 100), (5, 50, 100))
        ok = partitioned_edf_test(implicit_set, cores=2,
                                  admission="utilization")
        assert ok.verdict is Verdict.FEASIBLE
        hedged = partitioned_edf_test(constrained, cores=2,
                                      admission="utilization")
        assert hedged.verdict is Verdict.UNKNOWN
        assert "constrained deadlines" in hedged.details["reason"]

    def test_epsilon_tightens_admission(self):
        result = partitioned_edf_test(
            ma_shin_taskset(), cores=2, epsilon=Fraction(1, 3)
        )
        assert result.verdict is Verdict.FEASIBLE
        assert "eps=1/3" in result.details["admission"]


class TestGlobalBounds:
    def test_density_bound_accepts_light_sets(self):
        ts = TaskSet.of((1, 10, 10), (1, 10, 10))
        assert global_density_test(ts, cores=2).is_feasible

    def test_density_bound_unknown_when_violated(self):
        ts = TaskSet.of((5, 10, 20), (5, 10, 20), (5, 10, 20), (5, 10, 20))
        result = global_density_test(ts, cores=2)
        assert result.verdict is Verdict.UNKNOWN
        assert result.details["density_sum"] == Fraction(2)

    def test_density_bound_infeasible_cases(self):
        overload = implicit(0.9, 0.9, 0.9)
        assert global_density_test(overload, cores=2).is_infeasible
        sequential = TaskSet.of((5, 3, 100), (1, 50, 100))
        result = global_density_test(sequential, cores=4)
        assert result.is_infeasible
        assert "C > D" in result.details["reason"]

    def test_gfb_requires_implicit_deadlines(self):
        constrained = TaskSet.of((2, 5, 10))
        result = global_gfb_test(constrained, cores=2)
        assert result.verdict is Verdict.UNKNOWN
        assert "implicit" in result.details["reason"]

    def test_gfb_formula(self):
        # U = 1.2, u_max = 0.6: bound m(1 - 0.6) + 0.6 -> m=2 gives 1.4.
        ts = implicit(0.6, 0.6)
        assert global_gfb_test(ts, cores=2).is_feasible
        heavier = implicit(0.6, 0.6, 0.6)  # U = 1.8 > 1.4
        assert global_gfb_test(heavier, cores=2).verdict is Verdict.UNKNOWN

    def test_empty_set_is_feasible_everywhere(self):
        empty = TaskSet(())
        assert global_density_test(empty, cores=1).is_feasible
        assert global_gfb_test(empty, cores=1).is_feasible

    @pytest.mark.parametrize("cores", [0, -3, True])
    def test_nonsensical_core_counts_raise_everywhere(self, cores):
        ts = TaskSet.of((1, 4, 4))
        for test in (partitioned_edf_test, global_density_test,
                     global_gfb_test):
            with pytest.raises(ValueError, match="cores must be"):
                test(ts, cores=cores)
            with pytest.raises(ValueError, match="cores must be"):
                test(TaskSet(()), cores=cores)


class TestEngineIntegration:
    def test_analyze_by_name(self):
        result = analyze(ma_shin_taskset(), "partitioned-edf", cores=2,
                         heuristic="wfd", admission="exact-dbf")
        assert result.is_feasible
        assert result.details["heuristic"] == "wfd"

    def test_cores_option_is_required_and_typed(self):
        with pytest.raises(ValueError, match="requires option 'cores'"):
            analyze(ma_shin_taskset(), "partitioned-edf")
        with pytest.raises(ValueError, match="expects int"):
            analyze(ma_shin_taskset(), "partitioned-edf", cores="four")

    def test_parallel_batch_matches_sequential(self):
        ts = ma_shin_taskset()
        requests = [
            AnalysisRequest(
                source=ts,
                test="partitioned-edf",
                options={"cores": m, "heuristic": h},
            )
            for m in (1, 2, 3)
            for h in ("ff", "ffd", "wfd")
        ]
        sequential = BatchRunner(jobs=1).run(requests)
        parallel = BatchRunner(jobs=2).run(requests)
        assert parallel == sequential
        assert all(r.is_feasible for r in sequential)


class TestFigM:
    def test_small_run_structure(self):
        config = FigMConfig(
            cores=(2, 3),
            sets_per_point=3,
            tasks_per_core=(2, 3),
            period_range=(100, 2_000),
            heuristics=("ff", "ffd"),
        )
        agg = run_figm(config)
        assert set(agg) == {2, 3}
        for stats in agg.values():
            assert set(stats) == {"ff", "ffd", "global-density"}
            for test_stats in stats.values():
                assert 0.0 <= test_stats["acceptance_rate"] <= 1.0
        text = render_figm(agg)
        assert "m" in text and "global-density" in text

    def test_decreasing_dominates_plain_first_fit(self):
        config = FigMConfig(
            cores=(2, 4),
            sets_per_point=8,
            period_range=(100, 2_000),
            heuristics=("ff", "ffd"),
        )
        agg = run_figm(config)
        for stats in agg.values():
            assert (
                stats["ffd"]["acceptance_rate"]
                >= stats["ff"]["acceptance_rate"]
            )

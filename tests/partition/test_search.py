"""Minimum-core search and global-bound tests.

The acceptance bar of the subsystem lives here: minimum-core results
for the literature task sets are validated against the per-core EDF
simulation oracle, and binary and linear search agree wherever both are
sound.
"""

from fractions import Fraction

import pytest

from repro.generation import burns_taskset, gap_taskset, ma_shin_taskset
from repro.model import TaskSet, task
from repro.partition import (
    min_cores_global_density,
    minimum_cores,
    pack,
    partitioned_lower_bound,
    verify_partition,
)


def doubled(ts: TaskSet, copies: int = 2) -> TaskSet:
    """The workload replicated *copies* times (distinct task names)."""
    tasks = []
    for copy in range(copies):
        for t in ts:
            tasks.append(task(t.wcet, t.deadline, t.period,
                              name=f"{t.name}-x{copy}"))
    return TaskSet(tasks, name=f"{ts.name}x{copies}")


class TestLowerBound:
    def test_ceiling_of_utilization(self):
        assert partitioned_lower_bound(TaskSet.of((1, 2, 2))) == 1
        assert partitioned_lower_bound(TaskSet.of((3, 2, 2), (1, 2, 2))) == 2
        assert partitioned_lower_bound(TaskSet(())) == 1

    def test_exact_integer_utilization_is_not_rounded_up(self):
        ts = TaskSet.of((1, 1, 1), (1, 1, 1))  # U = 2 exactly
        assert partitioned_lower_bound(ts) == 2


class TestMinimumCores:
    def test_single_core_workload(self):
        found = minimum_cores(ma_shin_taskset())
        assert found.cores == 1
        assert found.packing.success
        assert found.attempts[-1] == (1, True)

    def test_search_respects_the_lower_bound(self):
        ts = doubled(ma_shin_taskset(), copies=3)  # U ~ 2.7
        found = minimum_cores(ts, "ffd", "approx-dbf")
        assert found.lower_bound == 3
        assert found.cores >= found.lower_bound
        assert all(m >= found.lower_bound for m, _ in found.attempts)

    def test_inadmissible_singleton_aborts_immediately(self):
        # deadline < wcet: infeasible alone on any core.
        ts = TaskSet.of((5, 3, 10), (1, 4, 8))
        found = minimum_cores(ts)
        assert found.cores is None
        assert found.attempts == ()

    def test_max_cores_ceiling(self):
        ts = doubled(ma_shin_taskset(), copies=3)
        found = minimum_cores(ts, max_cores=2)
        assert found.cores is None
        assert not found.found

    def test_empty_set_needs_one_idle_core(self):
        found = minimum_cores(TaskSet(()))
        assert found.cores == 1
        assert found.packing.success

    def test_binary_and_linear_agree_for_first_fit(self):
        ts = doubled(gap_taskset(), copies=2)
        binary = minimum_cores(ts, "ffd", strategy="binary")
        linear = minimum_cores(ts, "ffd", strategy="linear")
        assert binary.cores == linear.cores
        assert binary.strategy == "binary" and linear.strategy == "linear"
        # Same final packing either way: both end at the same m with a
        # deterministic heuristic.
        assert binary.packing.system == linear.packing.system

    def test_auto_strategy_selection(self):
        ts = ma_shin_taskset()
        assert minimum_cores(ts, "ffd").strategy == "binary"
        assert minimum_cores(ts, "bfd").strategy == "linear"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="auto, binary, linear"):
            minimum_cores(ma_shin_taskset(), strategy="quantum")


class TestLiteratureValidation:
    """Acceptance criterion: minimum-core results hold up against the
    per-core EDF simulation oracle on the literature examples."""

    @pytest.mark.parametrize(
        "workload",
        [
            burns_taskset(),
            gap_taskset(),
            ma_shin_taskset(),
            doubled(burns_taskset()),
            doubled(ma_shin_taskset(), copies=3),
        ],
        ids=["burns", "gap", "ma_shin", "burns-x2", "ma_shin-x3"],
    )
    @pytest.mark.parametrize("heuristic", ["ffd", "bfd"])
    def test_minimum_is_simulation_schedulable_and_tight(
        self, workload, heuristic
    ):
        found = minimum_cores(workload, heuristic, "approx-dbf")
        assert found.found
        # Every core of the minimal packing passes the independent
        # oracle (and the exact processor-demand criterion).
        verification = verify_partition(found.packing.system, method="both")
        assert verification.ok, verification.failing_cores
        # Tightness under the same heuristic: one core fewer fails
        # (unless the floor was already U-driven).
        if found.cores > found.lower_bound:
            below = pack(workload, found.cores - 1, heuristic, "approx-dbf")
            assert not below.success


class TestGlobalDensityMinimum:
    def test_single_light_task(self):
        assert min_cores_global_density(TaskSet.of((1, 10, 10))) == 1

    def test_matches_the_density_formula(self):
        # lambda = 1/2 each, three tasks: lam_sum=3/2, lam_max=1/2,
        # m >= (3/2 - 1/2) / (1/2) = 2.
        ts = TaskSet.of((5, 10, 20), (5, 10, 20), (5, 10, 20))
        assert min_cores_global_density(ts) == 2

    def test_density_above_one_unservable(self):
        assert min_cores_global_density(TaskSet.of((5, 3, 10))) is None

    def test_density_exactly_one(self):
        assert min_cores_global_density(TaskSet.of((3, 3, 10))) == 1
        two = TaskSet.of((3, 3, 10), (5, 10, 10))
        assert min_cores_global_density(two) is None

    def test_demands_more_cores_than_partitioning(self):
        # Constrained deadlines inflate density: the global bound is
        # far more pessimistic than an actual packing.
        ts = doubled(ma_shin_taskset())
        packed = minimum_cores(ts, "ffd", "approx-dbf")
        bound = min_cores_global_density(ts)
        assert bound is None or bound >= packed.cores

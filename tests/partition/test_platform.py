"""Unit tests for Platform and PartitionedSystem."""

from fractions import Fraction

import pytest

from repro.model import ModelError, TaskSet, task
from repro.partition import PartitionedSystem, Platform


@pytest.fixture
def tasks() -> TaskSet:
    return TaskSet.of((2, 6, 10), (3, 11, 16), (5, 25, 25)).renamed("trio")


class TestPlatform:
    def test_valid(self):
        assert Platform(cores=4).cores == 4
        assert Platform(cores=1, name="ecu").name == "ecu"

    @pytest.mark.parametrize("cores", [0, -1, 1.5, "4", True])
    def test_invalid_cores(self, cores):
        with pytest.raises(ModelError):
            Platform(cores=cores)


class TestPartitionedSystem:
    def test_default_assignment_is_all_unassigned(self, tasks):
        system = PartitionedSystem(tasks, Platform(2))
        assert system.assignment == (None, None, None)
        assert not system.is_complete
        assert system.unassigned == (0, 1, 2)

    def test_assignment_validation(self, tasks):
        with pytest.raises(ModelError, match="covers 2 tasks"):
            PartitionedSystem(tasks, Platform(2), [0, 1])
        with pytest.raises(ModelError, match="outside the platform"):
            PartitionedSystem(tasks, Platform(2), [0, 1, 2])
        with pytest.raises(ModelError, match="int core index"):
            PartitionedSystem(tasks, Platform(2), [0, "1", None])
        with pytest.raises(ModelError, match="int core index"):
            PartitionedSystem(tasks, Platform(2), [0, True, None])

    def test_requires_model_types(self, tasks):
        with pytest.raises(ModelError, match="TaskSet"):
            PartitionedSystem([task(1, 2, 3)], Platform(2))
        with pytest.raises(ModelError, match="Platform"):
            PartitionedSystem(tasks, 2)

    def test_core_views(self, tasks):
        system = PartitionedSystem(tasks, Platform(2), [0, 1, 0])
        assert system.core_indices(0) == (0, 2)
        assert system.core_indices(1) == (1,)
        subset = system.core_tasks(0)
        assert [t.wcet for t in subset] == [2, 5]
        assert subset.name == "trio/core0"
        assert system.core_utilization(0) == Fraction(2, 10) + Fraction(5, 25)
        assert system.core_utilizations() == (
            system.core_utilization(0),
            system.core_utilization(1),
        )

    def test_assign_returns_updated_copy(self, tasks):
        base = PartitionedSystem(tasks, Platform(2))
        step = base.assign(1, 1).assign(0, 0)
        assert base.assignment == (None, None, None)  # unchanged
        assert step.assignment == (0, 1, None)
        assert step.unassigned == (2,)
        with pytest.raises(ModelError):
            base.assign(5, 0)
        with pytest.raises(ModelError):
            base.assign(0, 2)

    def test_equality_and_hash(self, tasks):
        a = PartitionedSystem(tasks, Platform(2), [0, 1, 0])
        b = PartitionedSystem(tasks, Platform(2), [0, 1, 0])
        c = PartitionedSystem(tasks, Platform(2), [0, 1, 1])
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_summary_mentions_every_core_and_unassigned(self, tasks):
        system = PartitionedSystem(tasks, Platform(3), [0, None, 2])
        text = system.summary()
        assert "core 0" in text and "core 1" in text and "core 2" in text
        assert "unassigned" in text

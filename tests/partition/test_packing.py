"""Unit tests for the bin-packing heuristics."""

from fractions import Fraction

import pytest

from repro.model import ModelError, TaskSet, task
from repro.partition import (
    HEURISTICS,
    Platform,
    admission_predicate,
    pack,
    packing_order,
)


def uniform(*utils, period=100):
    """Implicit-deadline tasks with the given utilizations (of period 100)."""
    return TaskSet(
        [task(round(u * period), period, period, name=f"t{i}")
         for i, u in enumerate(utils)]
    )


class TestOrder:
    def test_plain_heuristics_keep_input_order(self):
        ts = uniform(0.2, 0.8, 0.5)
        for heuristic in ("ff", "bf", "wf", "nf"):
            assert packing_order(ts, heuristic) == (0, 1, 2)

    def test_decreasing_sorts_by_utilization_then_deadline(self):
        ts = TaskSet.of((20, 100, 100), (80, 100, 100), (50, 90, 100))
        assert packing_order(ts, "ffd") == (1, 2, 0)

    def test_ties_break_by_input_index(self):
        ts = uniform(0.5, 0.5, 0.5)
        assert packing_order(ts, "ffd") == (0, 1, 2)

    def test_unknown_heuristic_rejected(self):
        with pytest.raises(ValueError, match="unknown packing heuristic"):
            packing_order(uniform(0.5), "decreasing")


class TestHeuristicBehaviour:
    def test_first_fit_fills_low_cores_first(self):
        result = pack(uniform(0.4, 0.4, 0.4), 3, "ff", "utilization")
        assert result.system.assignment == (0, 0, 1)

    def test_best_fit_prefers_the_fullest_admitting_core(self):
        # 0.6 -> core0, 0.3 -> best fit is core0 (fullest), 0.5 -> core1.
        result = pack(uniform(0.6, 0.3, 0.5), 2, "bf", "utilization")
        assert result.system.assignment == (0, 0, 1)

    def test_worst_fit_prefers_the_emptiest_core(self):
        result = pack(uniform(0.6, 0.3, 0.5), 2, "wf", "utilization")
        assert result.system.assignment == (0, 1, 1)

    def test_next_fit_never_revisits(self):
        # 0.7 on core0; 0.6 forces the cursor to core1; 0.3 would fit
        # core0 but next-fit only sees core1.
        result = pack(uniform(0.7, 0.6, 0.3), 2, "nf", "utilization")
        assert result.system.assignment == (0, 1, 1)

    def test_ffd_beats_ff_on_an_adversarial_instance(self):
        # Input order lets first-fit pair 0.4 with 0.5 on core 0, which
        # strands the final 0.5; decreasing order packs (0.6, 0.4) and
        # (0.5, 0.5) perfectly.
        ts = uniform(0.4, 0.5, 0.6, 0.5)
        plain = pack(ts, 2, "ff", "utilization")
        decreasing = pack(ts, 2, "ffd", "utilization")
        assert not plain.success
        assert decreasing.success
        assert decreasing.system.core_utilizations() == (Fraction(1), Fraction(1))

    def test_unassigned_reported_in_task_order(self):
        result = pack(uniform(0.9, 0.9, 0.9), 2, "ff", "utilization")
        assert result.unassigned == (2,)
        assert result.system.assignment == (0, 1, None)


class TestContract:
    @pytest.mark.parametrize("heuristic", HEURISTICS)
    def test_deterministic_across_runs(self, heuristic):
        ts = uniform(0.55, 0.25, 0.45, 0.35, 0.6, 0.3)
        first = pack(ts, 3, heuristic, "approx-dbf")
        second = pack(ts, 3, heuristic, "approx-dbf")
        assert first.system == second.system
        assert first.admission_calls == second.admission_calls

    @pytest.mark.parametrize("heuristic", HEURISTICS)
    def test_every_heuristic_packs_an_easy_instance(self, heuristic):
        ts = uniform(0.3, 0.3, 0.3, 0.3)
        result = pack(ts, 4, heuristic, "exact-dbf")
        assert result.success
        assert result.heuristic == heuristic

    def test_unknown_heuristic_lists_choices(self):
        with pytest.raises(ValueError, match="ffd"):
            pack(uniform(0.5), 2, "zfd", "utilization")

    def test_platform_accepted_in_place_of_core_count(self):
        result = pack(uniform(0.5, 0.5), Platform(2, name="ecu"), "ff",
                      "utilization")
        assert result.system.platform.name == "ecu"

    def test_predicate_instance_rejects_extra_admission_options(self):
        # A ready-made predicate is fully configured; silently dropping
        # a requested epsilon would deliver looser packings than asked.
        predicate = admission_predicate("approx-dbf")
        ts = uniform(0.4, 0.4)
        with pytest.raises(ValueError, match="ready-made"):
            pack(ts, 2, "ffd", predicate, epsilon=Fraction(1, 100))
        from repro.partition import minimum_cores

        with pytest.raises(ValueError, match="ready-made"):
            minimum_cores(ts, "ffd", predicate, epsilon=Fraction(1, 100))

    def test_shared_predicate_accumulates_calls(self):
        predicate = admission_predicate("utilization")
        ts = uniform(0.4, 0.4)
        first = pack(ts, 2, "ff", predicate)
        second = pack(ts, 2, "ff", predicate)
        assert predicate.calls == first.admission_calls + second.admission_calls

    def test_rejects_event_stream_sources(self):
        from repro.model import EventStream, EventStreamTask

        stream = EventStreamTask(
            stream=EventStream.burst(count=2, spacing=3, period=50),
            wcet=2,
            deadline=10,
        )
        with pytest.raises(ModelError, match="TaskSet"):
            pack([stream], 2)

    def test_admission_calls_bounded_by_tasks_times_cores(self):
        ts = uniform(0.5, 0.5, 0.5, 0.5, 0.5)
        result = pack(ts, 3, "ff", "utilization")
        assert result.admission_calls <= len(ts) * 3

"""Smoke + shape tests for the figure experiments (tiny populations).

The full-size shape assertions live in ``benchmarks/``; these tests keep
the experiment plumbing honest on populations small enough for the unit
suite.
"""

import pytest

from repro.experiments import (
    Fig1Config,
    Fig8Config,
    Fig9Config,
    render_fig1,
    render_fig8,
    render_fig9,
    render_table1,
    run_fig1,
    run_fig8,
    run_fig9,
    run_table1,
)


class TestFig1:
    def test_small_run_structure(self):
        config = Fig1Config(
            utilization_lo=0.80,
            utilization_hi=0.95,
            bin_width=0.05,
            sets_per_bin=4,
            tasks=(5, 10),
            levels=(2, 3),
            period_range=(100, 5_000),
        )
        agg = run_fig1(config)
        assert len(agg) == 3  # three bins
        for stats in agg.values():
            assert set(stats) == {"devi", "superpos(2)", "superpos(3)", "processor-demand"}
            for test_stats in stats.values():
                assert 0.0 <= test_stats["acceptance_rate"] <= 1.0
        text = render_fig1(agg)
        assert "U%" in text and "superpos(2)" in text

    def test_acceptance_ordering_holds(self):
        config = Fig1Config(
            utilization_lo=0.85,
            utilization_hi=1.0,
            bin_width=0.05,
            sets_per_bin=10,
            tasks=(5, 15),
            levels=(2, 6),
            period_range=(100, 5_000),
        )
        agg = run_fig1(config)
        for stats in agg.values():
            assert (
                stats["devi"]["acceptance_rate"]
                <= stats["superpos(2)"]["acceptance_rate"]
                <= stats["superpos(6)"]["acceptance_rate"] + 1e-12
            )
            assert (
                stats["superpos(6)"]["acceptance_rate"]
                <= stats["processor-demand"]["acceptance_rate"]
            )


class TestFig8:
    def test_small_run_structure_and_shape(self):
        config = Fig8Config(bins=3, sets_per_bin=5, tasks=(5, 20))
        agg = run_fig8(config)
        assert len(agg) == 3
        total_new = total_pda = 0.0
        for stats in agg.values():
            total_new += stats["all-approx"]["mean_iterations"]
            total_pda += stats["processor-demand"]["mean_iterations"]
        assert total_pda > 2 * total_new  # the paper's 10-20x, relaxed
        text = render_fig8(agg)
        assert "Average effort" in text and "Maximum effort" in text


class TestFig9:
    def test_small_run_structure_and_shape(self):
        config = Fig9Config(ratios=(100, 1_000), sets_per_ratio=4, tasks=(5, 20))
        agg = run_fig9(config)
        assert set(agg) == {100, 1_000}
        # PDA effort grows with the ratio; the new tests stay flat-ish.
        pda_100 = agg[100]["processor-demand"]["max_iterations"]
        pda_1k = agg[1_000]["processor-demand"]["max_iterations"]
        assert pda_1k > pda_100
        text = render_fig9(agg)
        assert "Tmax/Tmin" in text


class TestTable1:
    def test_rows_and_rendering(self):
        rows = run_table1()
        assert [r.system for r in rows] == [
            "Burns", "Ma & Shin", "GAP", "Gresser 1", "Gresser 2",
        ]
        assert all(r.feasible for r in rows)
        by_name = {r.system: r for r in rows}
        assert by_name["Burns"].devi is not None
        assert by_name["Ma & Shin"].devi is None
        text = render_table1(rows)
        assert "FAILED" in text
        assert "Proc. Dem." in text

"""Unit tests for report rendering."""

from repro.experiments import ascii_table, rows_to_csv, series_table


class TestAsciiTable:
    def test_alignment_and_title(self):
        text = ascii_table(
            headers=["name", "value"],
            rows=[["a", 1], ["bbbb", 22]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_float_formatting(self):
        text = ascii_table(["x"], [[1.23456789]])
        assert "1.235" in text


class TestSeriesTable:
    def test_rows_sorted_by_group(self):
        aggregated = {
            90: {"devi": {"mean_iterations": 5.0}},
            70: {"devi": {"mean_iterations": 3.0}},
        }
        text = series_table(aggregated, "mean_iterations", ["devi"], x_label="U%")
        lines = text.splitlines()
        assert lines[2].strip().startswith("70")
        assert lines[3].strip().startswith("90")

    def test_missing_test_shows_dash(self):
        aggregated = {1: {"devi": {"mean_iterations": 5.0}}}
        text = series_table(aggregated, "mean_iterations", ["devi", "other"])
        assert "-" in text.splitlines()[-1]


class TestCsv:
    def test_round_trippable_layout(self):
        csv = rows_to_csv(["a", "b"], [[1, 2], [3, 4]])
        lines = csv.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2"

"""Unit tests for the experiment harness."""

import pytest

from repro.experiments import (
    TestSpec,
    aggregate,
    paper_test_battery,
    run_battery,
    scale_factor,
    scaled,
    superpos_battery,
)
from repro.model import TaskSet


class TestBatteries:
    def test_paper_battery_lineup(self):
        names = [s.name for s in paper_test_battery()]
        assert names == ["devi", "dynamic", "all-approx", "processor-demand"]

    def test_superpos_battery_levels(self):
        names = [s.name for s in superpos_battery([2, 5])]
        assert names == ["devi", "superpos(2)", "superpos(5)", "processor-demand"]


class TestRunBattery:
    def test_records_per_set_and_test(self, simple_taskset, infeasible_taskset):
        records = run_battery(
            [simple_taskset, infeasible_taskset], paper_test_battery()
        )
        assert len(records) == 2 * 4
        exact = [r for r in records if r.test == "processor-demand"]
        assert exact[0].feasible and exact[0].accepted
        assert not exact[1].feasible and not exact[1].accepted

    def test_reference_defines_feasible_flag(self, infeasible_taskset):
        records = run_battery([infeasible_taskset], paper_test_battery())
        assert all(not r.feasible for r in records)

    def test_unknown_reference_rejected(self, simple_taskset):
        with pytest.raises(ValueError):
            run_battery([simple_taskset], paper_test_battery(), reference="nope")

    def test_empty_battery_rejected(self, simple_taskset):
        with pytest.raises(ValueError):
            run_battery([simple_taskset], [])

    def test_grouping(self, simple_taskset):
        records = run_battery(
            [simple_taskset, simple_taskset],
            paper_test_battery(),
            group_of=lambda s, i: f"g{i}",
        )
        assert {r.group for r in records} == {"g0", "g1"}


class TestAggregate:
    def test_statistics(self, simple_taskset, infeasible_taskset):
        records = run_battery(
            [simple_taskset, infeasible_taskset],
            paper_test_battery(),
            group_of=lambda s, i: "all",
        )
        stats = aggregate(records)["all"]
        pda = stats["processor-demand"]
        assert pda["count"] == 2
        assert pda["acceptance_rate"] == 0.5
        assert pda["acceptance_of_feasible"] == 1.0
        assert pda["max_iterations"] >= pda["mean_iterations"]

    def test_acceptance_of_feasible_ignores_infeasible(self, infeasible_taskset):
        records = run_battery(
            [infeasible_taskset], paper_test_battery(), group_of=lambda s, i: "g"
        )
        stats = aggregate(records)["g"]
        # No feasible sets in the group: the ratio defaults to 1.0.
        assert stats["devi"]["acceptance_of_feasible"] == 1.0


class TestScaling:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_factor() == 1.0
        assert scaled(10) == 10

    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert scale_factor() == 2.5
        assert scaled(10) == 25

    def test_minimum_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.01")
        assert scaled(10) == 1

    def test_invalid_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "lots")
        with pytest.raises(ValueError):
            scale_factor()
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            scale_factor()

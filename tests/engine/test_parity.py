"""Golden parity: engine dispatch ≡ the pre-refactor entry points.

Every registered test must return *identical* results (verdict,
iteration counts, bounds, witnesses — full :class:`FeasibilityResult`
equality, which is stronger than the verdict identity the acceptance
criterion asks for) whether invoked through ``analyze(name)``, through a
``BatchRunner``, or through the direct function call that predates the
engine.  The population is the paper's five literature systems plus
seeded random task sets, including infeasible and ``U > 1`` ones.
"""

import random

import pytest

from repro.analysis import devi_test, liu_layland_test, processor_demand_test, qpa_test
from repro.analysis.bounds import BoundMethod
from repro.core import all_approx_test, dynamic_test, superposition_test
from repro.engine import AnalysisRequest, BatchRunner, analyze
from repro.generation import example_systems
from repro.model import as_components
from repro.rtc import rtc_feasibility_test

from ..conftest import random_taskset

#: (registry name, options, pre-refactor callable) — one row per
#: registered test, plus option variants that exercise the schemas.
PARITY_CASES = [
    ("devi", {}, devi_test),
    ("liu-layland", {}, liu_layland_test),
    ("processor-demand", {}, processor_demand_test),
    (
        "processor-demand",
        {"bound_method": BoundMethod.BEST},
        lambda s: processor_demand_test(s, bound_method=BoundMethod.BEST),
    ),
    ("qpa", {}, qpa_test),
    ("superpos", {"level": 1}, lambda s: superposition_test(s, 1)),
    ("superpos", {"level": 3}, lambda s: superposition_test(s, 3)),
    ("dynamic", {}, dynamic_test),
    (
        "dynamic",
        {"level_schedule": "increment"},
        lambda s: dynamic_test(s, level_schedule="increment"),
    ),
    (
        "dynamic",
        {"max_level": 2},
        lambda s: dynamic_test(s, max_level=2),
    ),
    ("all-approx", {}, all_approx_test),
    (
        "all-approx",
        {"revision_policy": "fifo"},
        lambda s: all_approx_test(s, revision_policy="fifo"),
    ),
    ("rtc", {}, rtc_feasibility_test),
    ("rtc", {"segments": 5}, lambda s: rtc_feasibility_test(s, segments=5)),
]

CASE_IDS = [
    f"{name}-{'-'.join(f'{k}={v}' for k, v in opts.items()) or 'default'}"
    for name, opts, _ in PARITY_CASES
]


def _random_population(seed=0xA15E, count=25):
    """Seeded sets spanning feasible, infeasible and overloaded systems."""
    rng = random.Random(seed)
    return [random_taskset(rng) for _ in range(count)]


def _literature_population():
    return [as_components(system) for system in example_systems().values()]


@pytest.mark.parametrize(("name", "options", "reference"), PARITY_CASES, ids=CASE_IDS)
class TestEngineParity:
    def test_literature_systems(self, name, options, reference):
        for system in _literature_population():
            assert analyze(system, name, **options) == reference(system)

    def test_seeded_random_sets(self, name, options, reference):
        for ts in _random_population():
            assert analyze(ts, name, **options) == reference(ts)

    def test_batch_runner_parity(self, name, options, reference):
        population = _literature_population() + _random_population(count=10)
        results = BatchRunner(jobs=1).run(
            AnalysisRequest(source=s, test=name, options=options)
            for s in population
        )
        expected = [reference(s) for s in population]
        assert results == expected


def test_population_exercises_all_verdict_classes():
    """The random population must cover accept/reject/overload paths."""
    from repro.model import total_utilization

    population = _random_population()
    utilizations = [total_utilization(as_components(ts)) for ts in population]
    assert any(u > 1 for u in utilizations), "no overloaded set in population"
    assert any(u <= 1 for u in utilizations), "no schedulable-range set"
    verdicts = {analyze(ts, "processor-demand").verdict for ts in population}
    assert len(verdicts) >= 2

"""Unit tests for the shared preflight pipeline (AnalysisContext)."""

import pytest

from repro.analysis import dbf, feasibility_bound
from repro.analysis.bounds import BoundMethod
from repro.analysis.busy_period import busy_period_of_components
from repro.engine import (
    AnalysisContext,
    clear_context_cache,
    context_cache_info,
    preflight,
)
from repro.model import TaskSet, as_components
from repro.result import Verdict


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_context_cache()
    yield
    clear_context_cache()


class TestContextCache:
    def test_same_system_reuses_context(self, simple_taskset):
        first = AnalysisContext.of(simple_taskset)
        second = AnalysisContext.of(simple_taskset)
        assert first is second
        info = context_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_equal_parameters_share_context(self):
        a = TaskSet.of((2, 6, 10), (3, 11, 16))
        b = TaskSet.of((2, 6, 10), (3, 11, 16))
        assert AnalysisContext.of(a) is AnalysisContext.of(b)

    def test_different_systems_do_not_collide(self, simple_taskset):
        other = TaskSet.of((1, 1, 2), (1, 1, 2))
        assert AnalysisContext.of(simple_taskset) is not AnalysisContext.of(other)

    def test_context_passthrough(self, simple_taskset):
        ctx = AnalysisContext.of(simple_taskset)
        assert AnalysisContext.of(ctx) is ctx

    def test_eviction_keeps_cache_bounded(self):
        from repro.engine import context as context_module

        for i in range(context_module._CACHE_MAX + 10):
            AnalysisContext.of(TaskSet.of((1, i + 5, i + 10)))
        assert context_cache_info()["size"] <= context_cache_info()["max_size"]

    def test_concurrent_access_is_safe(self, monkeypatch):
        """The service layer hits the LRU from many threads; with a tiny
        cache forcing constant eviction, hits racing evictions must not
        raise (the historical failure was KeyError from move_to_end)."""
        import threading

        from repro.engine import context as context_module

        monkeypatch.setattr(context_module, "_CACHE_MAX", 4)
        errors = []

        def hammer(seed: int) -> None:
            try:
                for i in range(300):
                    value = (seed * 7 + i) % 12
                    AnalysisContext.of(TaskSet.of((1, value + 5, value + 10)))
            except Exception as err:  # pragma: no cover - the regression
                errors.append(err)

        threads = [
            threading.Thread(target=hammer, args=(s,)) for s in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert context_cache_info()["size"] <= 4

    def test_fingerprint_of_matches_context_without_caching(
        self, simple_taskset
    ):
        from repro.engine import fingerprint_of

        before = context_cache_info()["misses"]
        fingerprint = fingerprint_of(simple_taskset)
        assert context_cache_info()["misses"] == before  # no cache traffic
        ctx = AnalysisContext.of(simple_taskset)
        assert fingerprint == ctx.fingerprint
        assert fingerprint_of(ctx) == ctx.fingerprint


class TestMemoizedQuantities:
    def test_bounds_match_feasibility_bound(self, simple_taskset):
        ctx = AnalysisContext.of(simple_taskset)
        components = as_components(simple_taskset)
        for method in BoundMethod:
            assert ctx.bound(method) == feasibility_bound(components, method)

    def test_default_bound_is_best(self, simple_taskset):
        ctx = AnalysisContext.of(simple_taskset)
        assert ctx.bound() == ctx.bound(BoundMethod.BEST)

    def test_dbf_matches_exact(self, simple_taskset):
        ctx = AnalysisContext.of(simple_taskset)
        components = as_components(simple_taskset)
        for interval in (1, 6, 10, 11, 16, 25, 100, 1000):
            assert ctx.dbf(interval) == dbf(components, interval)

    def test_busy_period_matches(self, simple_taskset):
        ctx = AnalysisContext.of(simple_taskset)
        assert ctx.busy_period() == busy_period_of_components(
            as_components(simple_taskset)
        )

    def test_max_test_interval_matches_definition(self, simple_taskset):
        from repro.core import max_test_interval

        ctx = AnalysisContext.of(simple_taskset)
        for idx, comp in enumerate(ctx.components):
            for level in (1, 2, 5):
                assert ctx.max_test_interval(idx, level) == max_test_interval(
                    comp, level
                )

    def test_utilization_is_exact_total(self, simple_taskset):
        ctx = AnalysisContext.of(simple_taskset)
        assert ctx.utilization == simple_taskset.utilization


class TestPreflight:
    def test_accepts_feasible_candidate(self, simple_taskset):
        ctx, early = preflight(simple_taskset, "any")
        assert early is None
        assert not ctx.is_overloaded

    def test_overload_short_circuits(self):
        overloaded = TaskSet.of((3, 2, 2), (3, 2, 2))
        ctx, early = preflight(overloaded, "mytest")
        assert ctx.is_overloaded
        assert early is not None
        assert early.verdict is Verdict.INFEASIBLE
        assert early.test_name == "mytest"
        assert early.details["reason"] == "U > 1"

    def test_overload_report_knobs(self):
        overloaded = TaskSet.of((3, 2, 2), (3, 2, 2))
        _, early = preflight(
            overloaded,
            "devi-like",
            overload_iterations=1,
            overload_reason=None,
            overload_max_level=4,
        )
        assert early.iterations == 1
        assert early.max_level == 4
        assert "reason" not in early.details

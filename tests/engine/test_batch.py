"""Unit tests for BatchRunner: ordering, parallel/sequential parity."""

import pytest

from repro.core import all_approx_test
from repro.engine import AnalysisRequest, BatchRunner, default_jobs
from repro.model import TaskSet

from ..conftest import random_feasible_candidate


def _population(rng, count=12):
    return [random_feasible_candidate(rng) for _ in range(count)]


class TestSequentialExecution:
    def test_results_align_with_requests(self, rng):
        sets = _population(rng)
        runner = BatchRunner(jobs=1)
        results = runner.map(sets, test="all-approx")
        assert len(results) == len(sets)
        for ts, result in zip(sets, results):
            assert result == all_approx_test(ts)

    def test_empty_batch(self):
        assert BatchRunner(jobs=1).run([]) == []

    def test_mixed_tests_in_one_batch(self, simple_taskset, infeasible_taskset):
        requests = [
            AnalysisRequest(source=simple_taskset, test="devi"),
            AnalysisRequest(source=infeasible_taskset, test="qpa"),
            AnalysisRequest(source=simple_taskset, test="superpos",
                            options={"level": 2}),
        ]
        results = BatchRunner(jobs=1).run(requests)
        assert [r.test_name for r in results] == ["devi", "qpa", "superpos(2)"]
        assert results[1].is_infeasible

    def test_option_errors_surface(self, simple_taskset):
        runner = BatchRunner(jobs=1)
        with pytest.raises(ValueError, match="level"):
            runner.run([AnalysisRequest(source=simple_taskset, test="superpos")])


class TestParallelExecution:
    def test_parallel_matches_sequential(self, rng):
        sets = _population(rng, count=16)
        requests = [
            AnalysisRequest(source=ts, test=test)
            for ts in sets
            for test in ("devi", "dynamic", "all-approx")
        ]
        sequential = BatchRunner(jobs=1).run(requests)
        parallel = BatchRunner(jobs=2, chunk_size=5).run(requests)
        assert parallel == sequential

    def test_parallel_validates_before_fanout(self, simple_taskset):
        runner = BatchRunner(jobs=2)
        with pytest.raises(ValueError, match="unknown test"):
            runner.run(
                [
                    AnalysisRequest(source=simple_taskset, test="all-approx"),
                    AnalysisRequest(source=simple_taskset, test="bogus"),
                ]
            )


class TestConfiguration:
    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            BatchRunner(jobs=0)

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            BatchRunner(chunk_size=0)

    def test_default_jobs_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3
        assert BatchRunner().jobs == 3

    def test_default_jobs_zero_means_sequential(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == 1

    def test_default_jobs_invalid_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            default_jobs()

    def test_custom_registry_runs_sequentially(self, simple_taskset):
        from repro.engine import OptionSpec, TestDefinition, TestKind, TestRegistry
        from repro.result import FeasibilityResult, Verdict

        registry = TestRegistry()
        registry.register(
            TestDefinition(
                name="constant",
                kind=TestKind.SUFFICIENT,
                runner=lambda source: FeasibilityResult(
                    verdict=Verdict.FEASIBLE, test_name="constant"
                ),
            )
        )
        runner = BatchRunner(jobs=4, registry=registry)
        results = runner.map([simple_taskset] * 3, test="constant")
        assert [r.test_name for r in results] == ["constant"] * 3


class TestHarnessIntegration:
    def test_run_battery_parallel_matches_sequential(self, rng):
        from repro.experiments import paper_test_battery, run_battery

        sets = _population(rng, count=8)
        sequential = run_battery(sets, paper_test_battery(),
                                 runner=BatchRunner(jobs=1))
        parallel = run_battery(sets, paper_test_battery(),
                               runner=BatchRunner(jobs=2, chunk_size=3))
        assert sequential == parallel

    def test_callable_specs_still_run(self, simple_taskset):
        from repro.experiments import TestSpec, run_battery

        specs = [
            TestSpec("custom", run=all_approx_test),
            TestSpec("all-approx", test="all-approx"),
        ]
        records = run_battery([simple_taskset], specs)
        assert {r.test for r in records} == {"custom", "all-approx"}
        by_name = {r.test: r for r in records}
        assert by_name["custom"].iterations == by_name["all-approx"].iterations

    def test_spec_requires_exactly_one_execution_mode(self):
        from repro.experiments import TestSpec

        with pytest.raises(ValueError, match="exactly one"):
            TestSpec("bad")
        with pytest.raises(ValueError, match="exactly one"):
            TestSpec("bad", run=all_approx_test, test="all-approx")

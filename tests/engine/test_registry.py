"""Unit tests for the engine test registry and analyze() dispatch."""

import pytest

from repro.analysis.bounds import BoundMethod
from repro.engine import (
    OptionSpec,
    TestDefinition,
    TestKind,
    TestRegistry,
    analyze,
    default_registry,
)
from repro.result import FeasibilityResult, Verdict


EXPECTED_TESTS = {
    "all-approx",
    "devi",
    "dynamic",
    "global-edf-density",
    "global-edf-gfb",
    "liu-layland",
    "partitioned-edf",
    "processor-demand",
    "qpa",
    "rtc",
    "superpos",
}

#: Required options per test, for the run-everything sweep.
REQUIRED_OPTIONS = {
    "superpos": {"level": 2},
    "partitioned-edf": {"cores": 2},
    "global-edf-density": {"cores": 2},
    "global-edf-gfb": {"cores": 2},
}


class TestDefaultRegistry:
    def test_every_test_registered(self):
        assert set(default_registry().names()) == EXPECTED_TESTS

    def test_kinds(self):
        registry = default_registry()
        exact = {n for n in registry if registry.get(n).kind is TestKind.EXACT}
        assert exact == {"all-approx", "dynamic", "processor-demand", "qpa"}

    def test_every_test_runs_by_name(self, simple_taskset):
        registry = default_registry()
        for definition in registry.definitions():
            options = REQUIRED_OPTIONS.get(definition.name, {})
            result = analyze(simple_taskset, definition.name, **options)
            assert isinstance(result, FeasibilityResult)
            assert result.verdict in (Verdict.FEASIBLE, Verdict.UNKNOWN)

    def test_default_is_all_approx(self, simple_taskset):
        assert analyze(simple_taskset).test_name == "all-approx"


class TestLookupErrors:
    def test_unknown_name_lists_available(self, simple_taskset):
        with pytest.raises(ValueError, match="available.*all-approx"):
            analyze(simple_taskset, "nonesuch")

    def test_unknown_option_rejected(self, simple_taskset):
        with pytest.raises(ValueError, match="unknown option.*frobnicate"):
            analyze(simple_taskset, "dynamic", frobnicate=3)

    def test_missing_required_option(self, simple_taskset):
        with pytest.raises(ValueError, match="requires option 'level'"):
            analyze(simple_taskset, "superpos")

    def test_option_type_checked(self, simple_taskset):
        with pytest.raises(ValueError, match="expects int"):
            analyze(simple_taskset, "superpos", level="three")

    def test_option_choices_checked(self, simple_taskset):
        with pytest.raises(ValueError, match="must be one of"):
            analyze(simple_taskset, "all-approx", revision_policy="random")

    def test_bad_bound_method_string(self, simple_taskset):
        with pytest.raises(ValueError, match="bound_method"):
            analyze(simple_taskset, "qpa", bound_method="tightest")


class TestOptionResolution:
    def test_bound_method_accepts_string(self, simple_taskset):
        by_enum = analyze(
            simple_taskset, "processor-demand", bound_method=BoundMethod.BEST
        )
        by_name = analyze(simple_taskset, "processor-demand", bound_method="best")
        assert by_enum == by_name

    def test_defaults_applied(self):
        definition = default_registry().get("processor-demand")
        resolved = definition.resolve_options({})
        assert resolved["bound_method"] is BoundMethod.BARUAH
        assert resolved["max_interval"] is None

    def test_runnable_without_options(self):
        registry = default_registry()
        needs_options = {
            d.name for d in registry.definitions() if not d.runnable_without_options
        }
        assert needs_options == set(REQUIRED_OPTIONS)


class TestCustomRegistry:
    def _toy_definition(self, name="toy"):
        def runner(source, margin=0):
            return FeasibilityResult(verdict=Verdict.FEASIBLE, test_name=name)

        return TestDefinition(
            name=name,
            kind=TestKind.SUFFICIENT,
            runner=runner,
            options=(OptionSpec(name="margin", types=(int,), default=0),),
        )

    def test_register_and_dispatch(self, simple_taskset):
        registry = TestRegistry()
        registry.register(self._toy_definition())
        result = analyze(simple_taskset, "toy", registry=registry, margin=2)
        assert result.test_name == "toy"

    def test_duplicate_registration_rejected(self):
        registry = TestRegistry()
        registry.register(self._toy_definition())
        with pytest.raises(ValueError, match="already registered"):
            registry.register(self._toy_definition())

    def test_membership_and_len(self):
        registry = TestRegistry()
        assert "toy" not in registry and len(registry) == 0
        registry.register(self._toy_definition())
        assert "toy" in registry and len(registry) == 1

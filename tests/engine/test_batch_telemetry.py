"""Trace propagation and telemetry merge through BatchRunner
(repro.engine.batch)."""

import pytest

from repro.engine import AnalysisRequest, BatchRunner
from repro.engine.batch import _execute_chunk
from repro.obs import (
    format_traceparent,
    merge_worker_telemetry,
    new_span_id,
    new_trace_id,
    registry,
    span,
    span_log,
)

from ..conftest import random_feasible_candidate


def _population(rng, count=8):
    return [random_feasible_candidate(rng) for _ in range(count)]


def _engine_counters(test="qpa"):
    """(analyses count, iteration-histogram raw cells) for one test."""
    analyses = registry().get("repro_engine_analyses_total")
    iterations = registry().get("repro_engine_test_iterations")
    return (
        analyses.labels(test).value,
        iterations.labels(test).raw(),
    )


class TestCounterParity:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_parallel_counters_match_sequential_exactly(self, rng, jobs):
        """Parallel runs must produce bit-for-bit the same engine
        counters and iteration histograms as jobs=1 over the same
        requests."""
        sets = _population(rng)
        requests = [AnalysisRequest(source=ts, test="qpa") for ts in sets]

        before = _engine_counters()
        sequential = BatchRunner(jobs=1).run(list(requests))
        after_seq = _engine_counters()

        parallel = BatchRunner(jobs=jobs, chunk_size=3).run(list(requests))
        after_par = _engine_counters()

        assert parallel == sequential
        seq_analyses = after_seq[0] - before[0]
        par_analyses = after_par[0] - after_seq[0]
        assert par_analyses == seq_analyses == len(requests)

        def hist_delta(a, b):
            counts_a, sum_a, count_a = a
            counts_b, sum_b, count_b = b
            return (
                [y - x for x, y in zip(counts_a, counts_b)],
                sum_b - sum_a,
                count_b - count_a,
            )

        seq_hist = hist_delta(before[1], after_seq[1])
        par_hist = hist_delta(after_seq[1], after_par[1])
        assert par_hist == seq_hist

    def test_mixed_tests_parity(self, rng):
        sets = _population(rng, count=6)
        requests = [
            AnalysisRequest(source=ts, test=test)
            for ts in sets
            for test in ("qpa", "devi")
        ]
        sequential = BatchRunner(jobs=1).run(list(requests))
        parallel = BatchRunner(jobs=2, chunk_size=4).run(list(requests))
        assert parallel == sequential


class TestChunkTelemetry:
    """Exercise the worker entry point in-process: deterministic
    coverage of the merge path even where multiprocessing falls back."""

    def _chunk(self, rng, traceparent, count=3):
        sets = _population(rng, count=count)
        entries = [
            (index, ts, "qpa", {}) for index, ts in enumerate(sets)
        ]
        return _execute_chunk((entries, traceparent))

    def test_chunk_spans_join_the_parent_trace(self, rng):
        tid, sid = new_trace_id(), new_span_id()
        results, telemetry = self._chunk(
            rng, format_traceparent(tid, sid)
        )
        assert len(results) == 3
        spans = telemetry["spans"]
        chunk = [s for s in spans if s["name"] == "worker.chunk"]
        assert len(chunk) == 1
        assert chunk[0]["trace_id"] == tid
        assert chunk[0]["parent_id"] == sid
        analyze = [s for s in spans if s["name"] == "engine.analyze"]
        assert len(analyze) == 3
        for record in analyze:
            assert record["trace_id"] == tid
            assert record["parent_id"] == chunk[0]["span_id"]

    def test_chunk_without_traceparent_starts_fresh_trace(self, rng):
        results, telemetry = self._chunk(rng, None, count=1)
        chunk = [
            s for s in telemetry["spans"] if s["name"] == "worker.chunk"
        ][0]
        assert chunk["parent_id"] is None
        assert len(chunk["trace_id"]) == 32

    def test_chunk_telemetry_merges_into_parent(self, rng):
        results, telemetry = self._chunk(rng, None, count=2)
        # Workers never touch the parent-side engine counters — the
        # parity invariant — so their delta must not contain them.
        assert "repro_engine_analyses_total" not in (
            telemetry["metrics"] or {}
        )
        cursor = span_log().last_seq
        merge_worker_telemetry(telemetry)
        merged, _ = span_log().since(cursor, limit=1 << 30)
        names = [r["name"] for r in merged]
        assert names.count("engine.analyze") == 2
        worker_tag = telemetry["worker"]
        assert all(r["attrs"].get("worker") == worker_tag for r in merged)

    def test_chunk_kernel_metrics_ride_back(self, rng):
        _, telemetry = self._chunk(rng, None, count=2)
        delta = telemetry["metrics"] or {}
        assert "repro_kernel_primitive_calls_total" in delta
        before = (
            registry()
            .get("repro_kernel_primitive_calls_total")
            .labels("qpa")
            .value
        )
        merge_worker_telemetry(telemetry)
        after = (
            registry()
            .get("repro_kernel_primitive_calls_total")
            .labels("qpa")
            .value
        )
        assert after - before == 2


class TestBatchTracePropagation:
    def test_parallel_spans_share_the_submitting_trace(self, rng):
        sets = _population(rng, count=4)
        requests = [AnalysisRequest(source=ts, test="qpa") for ts in sets]
        cursor = span_log().last_seq
        with span("test.batch.root") as root:
            BatchRunner(jobs=2, chunk_size=2).run(requests)
        records, _ = span_log().since(cursor, limit=1 << 30)
        mine = [r for r in records if r["trace_id"] == root.trace_id]
        names = {r["name"] for r in mine}
        assert "engine.batch" in names
        assert "engine.analyze" in names
        analyze = [r for r in mine if r["name"] == "engine.analyze"]
        assert len(analyze) == len(requests)

    def test_sequential_campaign_span(self, rng):
        sets = _population(rng, count=3)
        requests = [
            AnalysisRequest(source=ts, test="processor-demand")
            for ts in sets
        ]
        cursor = span_log().last_seq
        with span("test.campaign.root") as root:
            BatchRunner(jobs=1).run(requests)
        records, _ = span_log().since(cursor, limit=1 << 30)
        mine = [r for r in records if r["trace_id"] == root.trace_id]
        campaign = [r for r in mine if r["name"] == "engine.campaign"]
        assert len(campaign) == 1
        assert campaign[0]["attrs"]["systems"] == 3

"""HTTP API tests against a live in-process server on an ephemeral port."""

import json
import urllib.error
import urllib.request

import pytest

from repro.engine import analyze, clear_context_cache, default_registry
from repro.generation import generate_taskset
from repro.model import result_from_dict, system_to_dict, taskset_to_dict
from repro.partition import pack
from repro.service import AnalysisServer, ServiceClient, ServiceError


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_context_cache()
    yield
    clear_context_cache()


@pytest.fixture(scope="module")
def server():
    with AnalysisServer(port=0) as live:
        yield live


@pytest.fixture
def client(server):
    return ServiceClient(server.url)


def _get_raw(server, path):
    with urllib.request.urlopen(server.url + path, timeout=10) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


class TestIntrospection:
    def test_health_golden(self, server):
        status, body = _get_raw(server, "/v1/health")
        assert status == 200
        assert body["ok"] is True
        assert body["store"] is False
        assert "version" in body

    def test_tests_endpoint_mirrors_registry(self, client):
        described = {t["name"]: t for t in client.tests()}
        registry = default_registry()
        assert set(described) == set(registry.names())
        qpa = described["qpa"]
        assert qpa["kind"] == "exact"
        assert qpa["options"][0]["name"] == "bound_method"
        assert qpa["options"][0]["required"] is False
        superpos = described["superpos"]
        level = next(o for o in superpos["options"] if o["name"] == "level")
        assert level["required"] is True

    def test_cache_stats_shape(self, client):
        stats = client.cache_stats()
        assert set(stats) == {"context", "store", "queue", "admission", "fleet"}
        assert stats["store"] is None  # this server runs without a store
        assert stats["fleet"] is None  # and without a coordinator
        assert "hits" in stats["context"]
        assert "workers" in stats["queue"]


class TestErrors:
    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(server.url + "/v1/nope", timeout=10)
        assert err.value.code == 404

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.status("doesnotexist")
        assert err.value.status == 404

    def test_malformed_json_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/v1/jobs",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400

    def test_missing_source_is_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit_document({"test": "qpa"})
        assert err.value.status == 400
        assert "taskset" in err.value.message

    def test_unknown_test_is_400(self, client, simple_taskset):
        with pytest.raises(ServiceError) as err:
            client.submit_document(
                {"test": "no-such", "taskset": taskset_to_dict(simple_taskset)}
            )
        assert err.value.status == 400

    def test_bad_options_are_400(self, client, simple_taskset):
        with pytest.raises(ServiceError) as err:
            client.submit_document(
                {
                    "test": "superpos",  # missing required 'level'
                    "taskset": taskset_to_dict(simple_taskset),
                }
            )
        assert err.value.status == 400
        assert "level" in err.value.message

    def test_results_of_unfinished_job_conflict(self, simple_taskset):
        import threading

        from repro.engine import BatchRunner

        class Gated:
            def __init__(self):
                self._inner = BatchRunner(jobs=1)
                self.gate = threading.Event()
                self.started = threading.Event()
                self.jobs = 1

            def run(self, requests):
                self.started.set()
                assert self.gate.wait(10)
                return self._inner.run(requests)

        runner = Gated()
        with AnalysisServer(port=0, runner=runner) as live:
            gated_client = ServiceClient(live.url)
            job = gated_client.submit_document(
                {"taskset": taskset_to_dict(simple_taskset)}
            )["job"]
            assert runner.started.wait(10)
            with pytest.raises(ServiceError) as err:
                gated_client.raw_results(job)
            assert err.value.status == 409
            runner.gate.set()
            assert gated_client.wait(job, timeout=30)["state"] == "done"
            assert gated_client.raw_results(job)["results"]

    def test_cancel_done_job_is_noop(self, client, simple_taskset):
        job = client.submit_document(
            {"taskset": taskset_to_dict(simple_taskset)}
        )["job"]
        client.wait(job, timeout=30)
        assert client.cancel(job)["state"] == "done"


class TestSubmission:
    def test_single_taskset_result_golden(self, client, simple_taskset):
        job = client.submit_document(
            {"test": "qpa", "taskset": taskset_to_dict(simple_taskset)}
        )
        assert job["state"] in ("queued", "running", "done")
        assert job["total"] == 1
        snapshot = client.wait(job["job"], timeout=30)
        assert snapshot["state"] == "done"
        raw = client.raw_results(job["job"])
        (entry,) = raw["results"]
        assert entry["format"] == "repro/result-v1"
        assert entry["test"] == "qpa"
        assert entry["tag"] == 0
        direct = analyze(simple_taskset, "qpa")
        assert entry["verdict"] == direct.verdict.value
        assert entry["iterations"] == direct.iterations
        decoded = result_from_dict(entry)
        assert decoded.verdict == direct.verdict

    def test_batch_tasksets(self, client):
        sets = [generate_taskset(n=4, utilization=0.75, seed=i) for i in range(5)]
        job_id = client.submit(sets, "devi")
        snapshot = client.wait(job_id, timeout=30)
        assert snapshot["total"] == 5
        results = client.results(job_id)
        assert [r.verdict for r in results] == [
            analyze(ts, "devi").verdict for ts in sets
        ]

    def test_system_document_supplies_cores(self, client):
        tasks = generate_taskset(n=4, utilization=1.5, seed=7)
        packed = pack(tasks, 3, "ffd", "utilization")
        job = client.submit_document(
            {
                "test": "partitioned-edf",
                "system": system_to_dict(packed.system),
            }
        )
        snapshot = client.wait(job["job"], timeout=30)
        assert snapshot["state"] == "done"
        (entry,) = client.raw_results(job["job"])["results"]
        direct = analyze(tasks, "partitioned-edf", cores=3)
        assert entry["verdict"] == direct.verdict.value

    def test_heterogeneous_requests(self, client, simple_taskset):
        doc = taskset_to_dict(simple_taskset)
        job = client.submit_document(
            {
                "requests": [
                    {"test": "devi", "taskset": doc},
                    {"test": "superpos", "options": {"level": 2}, "taskset": doc},
                ]
            }
        )
        client.wait(job["job"], timeout=30)
        entries = client.raw_results(job["job"])["results"]
        assert [e["test"] for e in entries] == ["devi", "superpos"]
        assert entries[1]["max_level"] == 2

    def test_job_listing(self, client, simple_taskset):
        before = {j["job"] for j in client.jobs()}
        job_id = client.submit([simple_taskset])
        client.wait(job_id, timeout=30)
        listed = {j["job"] for j in client.jobs()}
        assert job_id in listed
        assert before <= listed


class TestClientBackoff:
    def test_wait_backs_off_exponentially_with_cap(self, monkeypatch):
        """wait() polls with capped exponential backoff, not a fixed sleep."""
        client = ServiceClient("http://unused.invalid")
        monkeypatch.setattr(
            client, "status", lambda job_id: {"state": "running"}
        )
        sleeps = []
        clock = [0.0]
        monkeypatch.setattr(
            "repro.service.client.time.monotonic", lambda: clock[0]
        )

        def fake_sleep(seconds):
            sleeps.append(seconds)
            clock[0] += seconds

        monkeypatch.setattr("repro.service.client.time.sleep", fake_sleep)
        with pytest.raises(TimeoutError):
            client.wait("job", timeout=10.0, poll=0.05, max_poll=2.0, backoff=2.0)
        # Doubling from the initial poll up to the cap...
        assert sleeps[:6] == [0.05, 0.1, 0.2, 0.4, 0.8, 1.6]
        # ...then flat at the cap (modulo the final deadline clip).
        assert all(s == 2.0 for s in sleeps[6:-1])
        assert max(sleeps) <= 2.0
        # Far fewer polls than fixed-interval polling would have issued.
        assert len(sleeps) < 10.0 / 0.05
        # The deadline is observed exactly: total sleep == timeout.
        assert sum(sleeps) == pytest.approx(10.0)

    def test_wait_rejects_shrinking_backoff(self):
        client = ServiceClient("http://unused.invalid")
        with pytest.raises(ValueError, match="backoff"):
            client.wait("job", backoff=0.5)

    def test_wait_returns_promptly_for_fast_jobs(self, client, simple_taskset):
        job_id = client.submit([simple_taskset], test="devi")
        snapshot = client.wait(job_id, timeout=30.0)
        assert snapshot["state"] == "done"

"""Trace endpoints, job profiling, and the `obs trace`/`obs events`
CLI against an in-process server."""

import json
import urllib.request

import pytest

import repro.cli as cli
from repro.engine import clear_context_cache
from repro.generation import generate_taskset
from repro.obs import parse_traceparent, span
from repro.service import AnalysisServer, ServiceClient, ServiceError


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_context_cache()
    yield
    clear_context_cache()


@pytest.fixture(scope="module")
def server():
    with AnalysisServer(port=0, sampler_interval=0.2) as live:
        yield live


@pytest.fixture
def client(server):
    return ServiceClient(server.url)


@pytest.fixture(scope="module")
def tasks():
    return generate_taskset(n=6, utilization=0.7, seed=13)


def _finished_job(client, tasks, **kwargs):
    job = client.submit([tasks], test="qpa", **kwargs)
    return client.wait(job, timeout=30)


class TestTraceEndpoints:
    def test_job_snapshot_carries_trace_id(self, client, tasks):
        snapshot = _finished_job(client, tasks)
        trace_id = snapshot["trace_id"]
        assert trace_id and len(trace_id) == 32

    def test_trace_fetch_reconstructs_server_tree(self, client, tasks):
        snapshot = _finished_job(client, tasks)
        spans = client.trace(snapshot["trace_id"])
        names = {record["name"] for record in spans}
        assert {"http.request", "queue.job", "engine.batch"} <= names
        assert "kernel.qpa" in names or "engine.analyze" in names
        # The tree is connected: every non-root span's parent is either
        # retained or the remote (client-side) parent of the trace.
        by_id = {record["span_id"] for record in spans}
        roots = [r for r in spans if r["parent_id"] not in by_id]
        assert roots

    def test_submitting_inside_a_span_propagates_the_trace(
        self, client, tasks
    ):
        with span("test.trace.origin") as root:
            snapshot = _finished_job(client, tasks)
        assert snapshot["trace_id"] == root.trace_id
        spans = client.trace(root.trace_id)
        job_spans = [r for r in spans if r["name"] == "queue.job"]
        assert job_spans

    def test_unknown_trace_404s(self, client):
        with pytest.raises(ServiceError) as err:
            client.trace("f" * 32)
        assert err.value.status == 404

    def test_traces_listing(self, client, tasks):
        snapshot = _finished_job(client, tasks)
        summaries = client.traces()
        assert any(
            entry["trace"] == snapshot["trace_id"] for entry in summaries
        )
        for entry in summaries:
            assert entry["spans"] >= 1

    def test_traces_limit_validation(self, server):
        url = server.url + "/v1/traces?limit=0"
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(url, timeout=10)
        assert err.value.code == 400

    def test_events_limit_clamped(self, server, client, tasks):
        _finished_job(client, tasks)
        url = server.url + "/v1/events?since=0&limit=999999"
        with urllib.request.urlopen(url, timeout=10) as response:
            assert response.status == 200
            document = json.loads(response.read().decode("utf-8"))
        assert len(document["events"]) <= 1000


class TestJobProfiling:
    def test_profiled_job_result_has_breakdown(self, client, tasks):
        snapshot = _finished_job(client, tasks, profile=True)
        raw = client.raw_results(snapshot["job"])
        report = raw["profile"]
        assert report["spans"] >= 1
        names = {row["span"] for row in report["rows"]}
        assert "engine.batch" in names
        # The job profile is scoped to the job's own subtree — the
        # concurrent status polls must not leak into it.
        assert "http.request" not in names
        for row in report["rows"]:
            assert row["self_seconds"] <= row["total_seconds"] + 1e-9

    def test_unprofiled_job_has_no_breakdown(self, client, tasks):
        snapshot = _finished_job(client, tasks)
        raw = client.raw_results(snapshot["job"])
        assert "profile" not in raw

    def test_profile_flag_validated(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit_document(
                {"taskset": {"tasks": []}, "profile": "yes"}
            )
        assert err.value.status == 400


class TestClientPropagation:
    def test_every_request_carries_traceparent(self, server, client, tasks):
        # Even outside any span the client originates a trace per call.
        job = client.submit([tasks], test="qpa")
        snapshot = client.status(job)
        assert parse_traceparent(
            "00-" + snapshot["trace_id"] + "-" + "a" * 16 + "-01"
        )


class TestObsTraceCli:
    def _main(self, capsys, *argv):
        code = cli.main(list(argv))
        return code, capsys.readouterr()

    def test_trace_tree_rendering(self, server, client, tasks, capsys):
        snapshot = _finished_job(client, tasks)
        code, captured = self._main(
            capsys, "obs", "trace", snapshot["trace_id"], "--url", server.url
        )
        assert code == 0
        assert "queue.job" in captured.out
        assert "engine.batch" in captured.out

    def test_trace_listing(self, server, client, tasks, capsys):
        snapshot = _finished_job(client, tasks)
        code, captured = self._main(
            capsys, "obs", "trace", "--url", server.url
        )
        assert code == 0
        assert snapshot["trace_id"] in captured.out

    def test_trace_json_and_profile_modes(
        self, server, client, tasks, capsys
    ):
        snapshot = _finished_job(client, tasks)
        code, captured = self._main(
            capsys,
            "obs", "trace", snapshot["trace_id"], "--url", server.url,
            "--json",
        )
        assert code == 0
        spans = json.loads(captured.out)
        assert all("span_id" in record for record in spans)
        code, captured = self._main(
            capsys,
            "obs", "trace", snapshot["trace_id"], "--url", server.url,
            "--profile",
        )
        assert code == 0
        assert "self(s)" in captured.out

    def test_unknown_trace_exits_nonzero(self, server, capsys):
        code, captured = self._main(
            capsys, "obs", "trace", "e" * 32, "--url", server.url
        )
        assert code == 2
        assert "error" in captured.err

    def test_submit_prints_trace_line(self, server, tasks, tmp_path, capsys):
        from repro.model.serialization import taskset_to_dict

        path = tmp_path / "ts.json"
        path.write_text(json.dumps(taskset_to_dict(tasks)))
        code, captured = self._main(
            capsys,
            "submit", "--url", server.url, "--test", "qpa", str(path),
        )
        assert code == 0
        trace_lines = [
            line for line in captured.out.splitlines()
            if line.startswith("trace ")
        ]
        assert len(trace_lines) == 1
        assert len(trace_lines[0].split()[1]) == 32


class TestEventsFollowResilience:
    def _run_follow(self, monkeypatch, capsys, pages):
        """Feed canned pages/errors to `obs events --follow`."""
        class FakeClient:
            def __init__(self, url, timeout=30.0):
                self.calls = 0

            def events(self, since=0, limit=500):
                nonlocal pages
                if not pages:
                    raise KeyboardInterrupt
                item = pages.pop(0)
                if isinstance(item, Exception):
                    raise item
                return item

        monkeypatch.setattr(cli, "ServiceClient", FakeClient)
        monkeypatch.setattr(cli.time, "sleep", lambda _s: None)
        code = cli.main(
            ["obs", "events", "--follow", "--url", "http://x", "--since", "5"]
        )
        return code, capsys.readouterr()

    def test_survives_one_transient_error(self, monkeypatch, capsys):
        pages = [
            {"events": [{"seq": 6, "name": "a"}], "next": 6},
            ServiceError(0, "connection refused"),
            {"events": [{"seq": 7, "name": "b"}], "next": 7},
        ]
        code, captured = self._run_follow(monkeypatch, capsys, pages)
        assert code == 0
        lines = captured.out.splitlines()
        assert json.loads(lines[0])["name"] == "a"
        assert json.loads(lines[1])["name"] == "b"
        assert "retrying" in captured.err
        assert "resume with --since 7" in captured.err

    def test_second_consecutive_error_exits_with_cursor(
        self, monkeypatch, capsys
    ):
        pages = [
            {"events": [{"seq": 6, "name": "a"}], "next": 6},
            ServiceError(0, "down"),
            ServiceError(0, "still down"),
        ]
        code, captured = self._run_follow(monkeypatch, capsys, pages)
        assert code == 2
        assert "resume with --since 6" in captured.err

    def test_non_follow_error_propagates(self, monkeypatch, capsys):
        class FakeClient:
            def __init__(self, url, timeout=30.0):
                pass

            def events(self, since=0, limit=500):
                raise ServiceError(0, "nope")

        monkeypatch.setattr(cli, "ServiceClient", FakeClient)
        code = cli.main(["obs", "events", "--url", "http://x"])
        captured = capsys.readouterr()
        assert code == 2
        assert "resume" not in captured.err

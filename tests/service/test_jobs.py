"""Job queue lifecycle tests: submit → running → done / cancelled."""

import threading

import pytest

from repro.engine import (
    AnalysisRequest,
    BatchRunner,
    analyze,
    clear_context_cache,
)
from repro.generation import generate_taskset
from repro.service import JobQueue, JobState, ResultStore


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_context_cache()
    yield
    clear_context_cache()


@pytest.fixture
def queue():
    q = JobQueue(shard_size=4)
    yield q
    q.shutdown()


def _requests(sets, test="all-approx", **options):
    return [AnalysisRequest(source=ts, test=test, options=options) for ts in sets]


class _GatedRunner:
    """A BatchRunner stand-in that blocks until released (per .run call)."""

    def __init__(self):
        self._inner = BatchRunner(jobs=1)
        self.gate = threading.Event()
        self.started = threading.Event()
        self.jobs = 1

    def run(self, requests):
        self.started.set()
        assert self.gate.wait(10), "test deadlock: gate never released"
        return self._inner.run(requests)


class TestLifecycle:
    def test_single_job_completes(self, queue, simple_taskset):
        job_id = queue.submit(_requests([simple_taskset]))
        snapshot = queue.wait(job_id, timeout=10)
        assert snapshot["state"] == JobState.DONE
        assert snapshot["kind"] == "single"
        assert snapshot["total"] == snapshot["done"] == 1
        (result,) = queue.results(job_id)
        direct = analyze(simple_taskset)
        assert result.verdict == direct.verdict
        assert result.iterations == direct.iterations

    def test_batch_job_matches_direct_execution(self, queue):
        sets = [generate_taskset(n=4, utilization=0.8, seed=i) for i in range(10)]
        job_id = queue.submit(_requests(sets, "qpa"))
        snapshot = queue.wait(job_id, timeout=30)
        assert snapshot["state"] == JobState.DONE
        assert snapshot["kind"] == "batch"
        direct = BatchRunner(jobs=1).run(_requests(sets, "qpa"))
        served = queue.results(job_id)
        assert [r.verdict for r in served] == [r.verdict for r in direct]
        assert [r.iterations for r in served] == [r.iterations for r in direct]

    def test_validation_happens_at_submit(self, queue, simple_taskset):
        with pytest.raises(ValueError, match="unknown test"):
            queue.submit(_requests([simple_taskset], "no-such-test"))
        with pytest.raises(ValueError, match="requires option"):
            queue.submit(_requests([simple_taskset], "superpos"))
        with pytest.raises(ValueError, match="at least one"):
            queue.submit([])
        assert queue.list_jobs() == []  # nothing was enqueued

    def test_unknown_job_raises(self, queue):
        with pytest.raises(KeyError):
            queue.status("nope")
        with pytest.raises(KeyError):
            queue.cancel("nope")

    def test_results_unavailable_before_done(self, simple_taskset):
        runner = _GatedRunner()
        q = JobQueue(runner=runner)
        try:
            job_id = q.submit(_requests([simple_taskset]))
            assert runner.started.wait(10)
            with pytest.raises(ValueError, match="no results"):
                q.results(job_id)
            runner.gate.set()
            assert q.wait(job_id, timeout=10)["state"] == JobState.DONE
        finally:
            runner.gate.set()
            q.shutdown()


class TestCancellation:
    def test_cancel_queued_job(self, simple_taskset):
        runner = _GatedRunner()
        q = JobQueue(runner=runner, workers=1)
        try:
            blocker = q.submit(_requests([simple_taskset]))
            assert runner.started.wait(10)
            queued = q.submit(_requests([simple_taskset]))
            snapshot = q.cancel(queued)
            assert snapshot["state"] == JobState.CANCELLED
            runner.gate.set()
            assert q.wait(blocker, timeout=10)["state"] == JobState.DONE
            # the cancelled job never ran
            assert q.status(queued)["done"] == 0
        finally:
            runner.gate.set()
            q.shutdown()

    def test_cancel_running_job_stops_at_shard_boundary(self):
        sets = [generate_taskset(n=3, utilization=0.6, seed=i) for i in range(6)]
        runner = _GatedRunner()
        q = JobQueue(runner=runner, workers=1, shard_size=2)
        try:
            job_id = q.submit(_requests(sets))
            assert runner.started.wait(10)  # first shard is in flight
            q.cancel(job_id)
            runner.gate.set()
            snapshot = q.wait(job_id, timeout=10)
            assert snapshot["state"] == JobState.CANCELLED
            assert snapshot["done"] < snapshot["total"]
        finally:
            runner.gate.set()
            q.shutdown()


class TestStoreIntegration:
    def test_second_job_served_from_store(self, tmp_path, simple_taskset):
        with ResultStore(tmp_path / "s.sqlite") as store:
            q = JobQueue(store=store)
            try:
                first = q.submit(_requests([simple_taskset], "qpa"))
                q.wait(first, timeout=10)
                assert q.status(first)["computed"] == 1
                second = q.submit(_requests([simple_taskset], "qpa"))
                q.wait(second, timeout=10)
                snapshot = q.status(second)
                assert snapshot["from_store"] == 1
                assert snapshot["computed"] == 0
                assert (
                    q.results(second)[0].verdict == q.results(first)[0].verdict
                )
            finally:
                q.shutdown()

    def test_store_hit_skips_even_across_option_spelling(
        self, tmp_path, simple_taskset
    ):
        """Explicit default options hit the row written with implicit ones."""
        with ResultStore(tmp_path / "s.sqlite") as store:
            q = JobQueue(store=store)
            try:
                first = q.submit(_requests([simple_taskset], "qpa"))
                q.wait(first, timeout=10)
                second = q.submit(
                    _requests([simple_taskset], "qpa", bound_method="best")
                )
                q.wait(second, timeout=10)
                assert q.status(second)["from_store"] == 1
            finally:
                q.shutdown()


class TestProgress:
    def test_progress_advances_by_shards(self):
        sets = [generate_taskset(n=3, utilization=0.5, seed=i) for i in range(9)]
        q = JobQueue(shard_size=3)
        try:
            job_id = q.submit(_requests(sets))
            snapshot = q.wait(job_id, timeout=30)
            assert snapshot["state"] == JobState.DONE
            assert snapshot["done"] == 9
        finally:
            q.shutdown()

    def test_queue_stats_counts_states(self, queue, simple_taskset):
        job_id = queue.submit(_requests([simple_taskset]))
        queue.wait(job_id, timeout=10)
        stats = queue.stats()
        assert stats["done"] == 1
        assert stats["total"] == 1
        assert stats["workers"] == 1

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            JobQueue(workers=0)
        with pytest.raises(ValueError):
            JobQueue(shard_size=0)


class TestPriorities:
    def test_higher_priority_jumps_the_backlog(self, simple_taskset):
        """With one busy worker, a later high-priority job runs before an
        earlier default-priority one."""
        runner = _GatedRunner()
        q = JobQueue(runner=runner, workers=1)
        try:
            blocker = q.submit(_requests([simple_taskset]))
            assert runner.started.wait(10)  # the worker is now occupied
            low = q.submit(_requests([simple_taskset], "qpa"))
            high = q.submit(_requests([simple_taskset], "devi"), priority=5)
            runner.gate.set()
            assert q.wait(blocker, timeout=10)["state"] == JobState.DONE
            assert q.wait(high, timeout=10)["state"] == JobState.DONE
            assert q.wait(low, timeout=10)["state"] == JobState.DONE
            assert q.status(high)["started_at"] < q.status(low)["started_at"]
        finally:
            runner.gate.set()
            q.shutdown()

    def test_fifo_within_a_priority_level(self, simple_taskset):
        runner = _GatedRunner()
        q = JobQueue(runner=runner, workers=1)
        try:
            blocker = q.submit(_requests([simple_taskset]))
            assert runner.started.wait(10)
            first = q.submit(_requests([simple_taskset], "qpa"), priority=2)
            second = q.submit(_requests([simple_taskset], "devi"), priority=2)
            runner.gate.set()
            for job_id in (blocker, first, second):
                assert q.wait(job_id, timeout=10)["state"] == JobState.DONE
            assert (
                q.status(first)["started_at"] <= q.status(second)["started_at"]
            )
        finally:
            runner.gate.set()
            q.shutdown()

    def test_priority_in_snapshot_and_validation(self, queue, simple_taskset):
        job_id = queue.submit(_requests([simple_taskset]), priority=-3)
        assert queue.status(job_id)["priority"] == -3
        queue.wait(job_id, timeout=10)
        with pytest.raises(ValueError, match="priority"):
            queue.submit(_requests([simple_taskset]), priority="urgent")
        with pytest.raises(ValueError, match="priority"):
            queue.submit(_requests([simple_taskset]), priority=True)

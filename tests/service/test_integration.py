"""Service acceptance tests.

Covers the two acceptance criteria of the service layer:

* a *restarted* server answers a previously analyzed task set from the
  persistent store without re-running the test, verified through the
  cache-stats hit counters;
* a 100-set batch campaign submitted over HTTP returns verdicts
  identical to direct :class:`~repro.engine.batch.BatchRunner`
  execution.

Plus the full CLI loop: ``repro-edf serve`` in a real subprocess on an
ephemeral port, driven by ``repro-edf submit/status/fetch``.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.engine import (
    AnalysisRequest,
    BatchRunner,
    clear_context_cache,
)
from repro.generation import generate_taskset
from repro.model import dump_taskset
from repro.service import AnalysisServer, ServiceClient


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_context_cache()
    yield
    clear_context_cache()


class TestRestartPersistence:
    def test_restarted_server_answers_from_store(self, tmp_path, simple_taskset):
        store_path = tmp_path / "store.sqlite"

        with AnalysisServer(port=0, store=store_path) as first:
            client = ServiceClient(first.url)
            original = client.run([simple_taskset], "qpa")
            stats = client.cache_stats()["store"]
            assert stats["hits"] == 0 and stats["misses"] == 1
            first_job = client.jobs()[-1]
            assert first_job["computed"] == 1

        # Simulate a restart: fresh process state, same store file.
        clear_context_cache()

        with AnalysisServer(port=0, store=store_path) as second:
            client = ServiceClient(second.url)
            replayed = client.run([simple_taskset], "qpa")
            stats = client.cache_stats()["store"]
            assert stats["hits"] == 1, "restart must hit the persistent store"
            assert stats["misses"] == 0
            job = client.jobs()[-1]
            assert job["from_store"] == 1
            assert job["computed"] == 0, "the test must not re-run"
        assert [r.verdict for r in replayed] == [r.verdict for r in original]
        assert [r.iterations for r in replayed] == [
            r.iterations for r in original
        ]

    def test_restarted_server_rehydrates_contexts(self, tmp_path, simple_taskset):
        store_path = tmp_path / "store.sqlite"
        with AnalysisServer(port=0, store=store_path) as first:
            ServiceClient(first.url).run([simple_taskset], "qpa")

        clear_context_cache()

        with AnalysisServer(port=0, store=store_path) as second:
            client = ServiceClient(second.url)
            # A *different* test on the same set: result-store miss, but
            # the preflight state (bounds, busy period) comes back warm.
            client.run([simple_taskset], "processor-demand")
            context = client.cache_stats()["context"]
            assert context["persistent_hits"] >= 1


class TestBatchCampaignParity:
    def test_100_set_campaign_matches_direct_batchrunner(self, tmp_path):
        sets = [
            generate_taskset(n=6, utilization=0.6 + 0.004 * i, seed=i)
            for i in range(100)
        ]
        requests = [AnalysisRequest(source=ts, test="all-approx") for ts in sets]
        direct = BatchRunner(jobs=1).run(requests)

        clear_context_cache()
        with AnalysisServer(
            port=0, store=tmp_path / "store.sqlite", shard_size=16
        ) as server:
            client = ServiceClient(server.url)
            job_id = client.submit(sets, "all-approx")
            snapshot = client.wait(job_id, timeout=120)
            assert snapshot["state"] == "done"
            assert snapshot["total"] == snapshot["done"] == 100
            served = client.results(job_id)

        assert [r.verdict for r in served] == [r.verdict for r in direct]
        assert [r.iterations for r in served] == [r.iterations for r in direct]
        assert [r.bound for r in served] == [r.bound for r in direct]


class TestServeSubmitCli:
    """``repro-edf serve`` + ``submit`` against a live subprocess server."""

    @pytest.fixture
    def live_server(self, tmp_path):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--store",
                str(tmp_path / "store.sqlite"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = process.stdout.readline().strip()
            assert line.startswith("serving on "), line
            url = line.split("serving on ", 1)[1]
            # Wait until the socket actually answers.
            client = ServiceClient(url, timeout=5)
            deadline = time.monotonic() + 10
            while True:
                try:
                    client.health()
                    break
                except Exception:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.05)
            yield url
        finally:
            process.send_signal(signal.SIGINT)
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)

    def test_submit_status_fetch_roundtrip(self, tmp_path, live_server):
        from repro.cli import main

        file_a = tmp_path / "a.json"
        file_b = tmp_path / "b.json"
        dump_taskset(generate_taskset(n=5, utilization=0.7, seed=11), file_a)
        dump_taskset(generate_taskset(n=5, utilization=0.7, seed=12), file_b)

        code = main(
            ["submit", str(file_a), str(file_b), "--url", live_server, "--test", "qpa"]
        )
        assert code == 0

        client = ServiceClient(live_server)
        jobs = client.jobs()
        assert len(jobs) == 1 and jobs[0]["state"] == "done"
        job_id = jobs[0]["job"]

        assert main(["status", job_id, "--url", live_server]) == 0
        assert main(["status", "--url", live_server]) == 0
        assert main(["fetch", job_id, "--url", live_server]) == 0
        assert main(["fetch", job_id, "--url", live_server, "--json"]) == 0

        # Resubmitting the same files is answered from the store.
        assert (
            main(
                ["submit", str(file_a), str(file_b), "--url", live_server,
                 "--test", "qpa"]
            )
            == 0
        )
        last = client.jobs()[-1]
        assert last["from_store"] == 2
        assert last["computed"] == 0

    def test_one_trace_links_http_queue_engine_kernel(
        self, tmp_path, live_server
    ):
        """The trace id printed by a real `submit` subprocess resolves,
        on the server, to one connected span tree at least three levels
        deep (HTTP handler → queue job → engine → kernel)."""
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        file_a = tmp_path / "trace.json"
        dump_taskset(generate_taskset(n=5, utilization=0.7, seed=21), file_a)
        completed = subprocess.run(
            [
                sys.executable, "-m", "repro", "submit", str(file_a),
                "--url", live_server, "--test", "qpa",
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert completed.returncode == 0, completed.stderr
        trace_lines = [
            line for line in completed.stdout.splitlines()
            if line.startswith("trace ")
        ]
        assert len(trace_lines) == 1, completed.stdout
        trace_id = trace_lines[0].split()[1]

        spans = ServiceClient(live_server).trace(trace_id)
        assert all(record["trace_id"] == trace_id for record in spans)
        names = {record["name"] for record in spans}
        assert "http.request" in names
        assert "queue.job" in names
        assert "engine.batch" in names
        assert "kernel.qpa" in names or "engine.analyze" in names

        by_id = {record["span_id"]: record for record in spans}

        def depth(record):
            count, seen = 0, set()
            parent = record.get("parent_id")
            while parent in by_id and parent not in seen:
                seen.add(parent)
                count += 1
                parent = by_id[parent].get("parent_id")
            return count

        assert max(depth(record) for record in spans) >= 3

    def test_submit_unreachable_server_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        file_a = tmp_path / "a.json"
        dump_taskset(generate_taskset(n=3, utilization=0.5, seed=1), file_a)
        code = main(
            ["submit", str(file_a), "--url", "http://127.0.0.1:9", "--test", "devi"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

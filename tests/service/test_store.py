"""Unit tests for the persistent result store (SQLite)."""

import json
import sqlite3

import pytest

from repro.engine import AnalysisContext, analyze, clear_context_cache
from repro.model import TaskSet
from repro.service import ResultStore, canonical_options, fingerprint_key


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_context_cache()
    yield
    clear_context_cache()


@pytest.fixture
def store(tmp_path):
    with ResultStore(tmp_path / "store.sqlite") as s:
        yield s


def _fingerprint(tasks):
    return AnalysisContext.of(tasks).fingerprint


class TestKeying:
    def test_equal_systems_share_a_key(self):
        a = TaskSet.of((2, 6, 10), (3, 11, 16))
        b = TaskSet.of((2, 6, 10), (3, 11, 16))
        assert fingerprint_key(_fingerprint(a)) == fingerprint_key(_fingerprint(b))

    def test_different_systems_differ(self):
        a = TaskSet.of((2, 6, 10),)
        b = TaskSet.of((2, 7, 10),)
        assert fingerprint_key(_fingerprint(a)) != fingerprint_key(_fingerprint(b))

    def test_canonical_options_order_independent(self):
        assert canonical_options({"a": 1, "b": 2}) == canonical_options(
            {"b": 2, "a": 1}
        )

    def test_default_vs_explicit_options_collide(self):
        """Registry-resolved options make omitted and explicit defaults equal."""
        from repro.engine import default_registry

        definition = default_registry().get("qpa")
        implicit = definition.resolve_options({})
        explicit = definition.resolve_options({"bound_method": "best"})
        assert canonical_options(implicit) == canonical_options(explicit)


class TestRoundTrip:
    def test_result_round_trip(self, store, simple_taskset):
        result = analyze(simple_taskset, "qpa")
        fp = _fingerprint(simple_taskset)
        assert store.get(fp, "qpa", {}) is None  # miss first
        store.put(fp, "qpa", {}, result)
        restored = store.get(fp, "qpa", {})
        assert restored is not None
        assert restored.verdict == result.verdict
        assert restored.iterations == result.iterations
        assert restored.bound == result.bound
        assert restored.details["utilization"] == result.details["utilization"]

    def test_witness_survives(self, store, infeasible_taskset):
        result = analyze(infeasible_taskset, "processor-demand")
        fp = _fingerprint(infeasible_taskset)
        store.put(fp, "processor-demand", {}, result)
        restored = store.get(fp, "processor-demand", {})
        assert restored.witness == result.witness
        assert restored.witness.exact

    def test_persists_across_instances(self, tmp_path, simple_taskset):
        path = tmp_path / "store.sqlite"
        result = analyze(simple_taskset, "devi")
        fp = _fingerprint(simple_taskset)
        with ResultStore(path) as first:
            first.put(fp, "devi", {}, result)
        with ResultStore(path) as second:
            restored = second.get(fp, "devi", {})
        assert restored is not None
        assert restored.verdict == result.verdict

    def test_stats_counters(self, store, simple_taskset):
        result = analyze(simple_taskset, "devi")
        fp = _fingerprint(simple_taskset)
        store.get(fp, "devi", {})
        store.put(fp, "devi", {}, result)
        store.get(fp, "devi", {})
        stats = store.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["rows"] == 1

    def test_options_distinguish_rows(self, store, simple_taskset):
        fp = _fingerprint(simple_taskset)
        r3 = analyze(simple_taskset, "superpos", level=3)
        r5 = analyze(simple_taskset, "superpos", level=5)
        store.put(fp, "superpos", {"level": 3}, r3)
        store.put(fp, "superpos", {"level": 5}, r5)
        assert store.get(fp, "superpos", {"level": 3}).max_level == r3.max_level
        assert store.get(fp, "superpos", {"level": 5}).max_level == r5.max_level


class TestEviction:
    def test_lru_eviction_keeps_max_rows(self, tmp_path, simple_taskset):
        result = analyze(simple_taskset, "devi")
        with ResultStore(tmp_path / "s.sqlite", max_rows=5) as store:
            for i in range(12):
                fp = _fingerprint(TaskSet.of((1, i + 5, i + 10)))
                store.put(fp, "devi", {}, result)
            assert store.stats()["rows"] == 5

    def test_recently_used_rows_survive(self, tmp_path, simple_taskset):
        result = analyze(simple_taskset, "devi")
        keep = _fingerprint(TaskSet.of((1, 100, 200)))
        with ResultStore(tmp_path / "s.sqlite", max_rows=3) as store:
            store.put(keep, "devi", {}, result)
            for i in range(4):
                store.get(keep, "devi", {})  # keep it hot
                fp = _fingerprint(TaskSet.of((1, i + 5, i + 10)))
                store.put(fp, "devi", {}, result)
            assert store.get(keep, "devi", {}) is not None

    def test_max_rows_validation(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path / "s.sqlite", max_rows=0)


class TestCorruptionRecovery:
    def test_corrupt_file_is_quarantined(self, tmp_path, simple_taskset):
        path = tmp_path / "store.sqlite"
        path.write_bytes(b"this is not a sqlite database, not even close!")
        result = analyze(simple_taskset, "devi")
        fp = _fingerprint(simple_taskset)
        with ResultStore(path) as store:
            store.put(fp, "devi", {}, result)
            assert store.get(fp, "devi", {}) is not None
        assert (tmp_path / "store.sqlite.corrupt").exists()

    def test_corrupt_row_reads_as_miss_and_is_dropped(
        self, tmp_path, simple_taskset
    ):
        path = tmp_path / "store.sqlite"
        result = analyze(simple_taskset, "devi")
        fp = _fingerprint(simple_taskset)
        with ResultStore(path) as store:
            store.put(fp, "devi", {}, result)
        key = fingerprint_key(fp)
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE results SET result='{broken json' WHERE fingerprint=?",
                (key,),
            )
            conn.commit()
        with ResultStore(path) as store:
            assert store.get(fp, "devi", {}) is None
            assert store.stats()["rows"] == 0  # the bad row was deleted
            # and the slot is usable again
            store.put(fp, "devi", {}, result)
            assert store.get(fp, "devi", {}) is not None

    def test_corrupt_context_row_is_dropped(self, tmp_path, simple_taskset):
        path = tmp_path / "store.sqlite"
        fp = _fingerprint(simple_taskset)
        with ResultStore(path) as store:
            store.store_context(fp, {"busy_period": 10})
        with sqlite3.connect(path) as conn:
            conn.execute("UPDATE contexts SET state='}{'")
            conn.commit()
        with ResultStore(path) as store:
            assert store.load_context(fp) is None
            assert store.stats()["contexts"] == 0


class TestContextBackendContract:
    def test_context_state_round_trip(self, tmp_path, simple_taskset):
        from repro.analysis.bounds import BoundMethod

        ctx = AnalysisContext.of(simple_taskset)
        ctx.bound(BoundMethod.BARUAH)
        ctx.busy_period()
        ctx.dbf(10)
        state = ctx.export_state()
        fp = ctx.fingerprint
        with ResultStore(tmp_path / "s.sqlite") as store:
            store.store_context(fp, state)
            restored = store.load_context(fp)
        clear_context_cache()
        fresh = AnalysisContext.of(simple_taskset)
        fresh.apply_state(restored)
        assert fresh.bound(BoundMethod.BARUAH) == ctx.bound(BoundMethod.BARUAH)
        assert fresh.busy_period() == ctx.busy_period()
        assert fresh.dbf(10) == ctx.dbf(10)

    def test_lru_layers_over_backend(self, tmp_path, simple_taskset):
        """A fresh process (cleared LRU) rehydrates contexts from the store."""
        from repro.engine import context_cache_info, set_context_backend

        with ResultStore(tmp_path / "s.sqlite") as store:
            previous = set_context_backend(store)
            try:
                ctx = AnalysisContext.of(simple_taskset)
                ctx.busy_period()
                assert store.load_context(ctx.fingerprint) is None
                from repro.engine.context import persist_context

                assert persist_context(simple_taskset)
                clear_context_cache()  # "restart"
                again = AnalysisContext.of(simple_taskset)
                assert again._busy_period is not None  # rehydrated, not recomputed
                assert context_cache_info()["persistent_hits"] == 1
            finally:
                set_context_backend(previous)

"""Resilience satellites: client transient retry, store lock handling,
and queue shutdown semantics (drain vs cancel)."""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.engine import AnalysisContext, AnalysisRequest, analyze
from repro.model import TaskSet
from repro.service import JobQueue, JobState, ResultStore
from repro.service.client import (
    ServiceClient,
    ServiceError,
    TransientServiceError,
)

# ----------------------------------------------------------------------
# ServiceClient: transient classification and idempotent-GET retry
# ----------------------------------------------------------------------


class _FlakyHandler(BaseHTTPRequestHandler):
    """Answers 503 for the first ``fail_first`` requests per method,
    then 200; counts every hit so tests can assert attempt counts."""

    def log_message(self, *args):  # noqa: A002 - http.server API
        pass

    def _respond(self):
        counts = self.server.counts  # type: ignore[attr-defined]
        counts[self.command] = counts.get(self.command, 0) + 1
        if self.command == "POST":
            length = int(self.headers.get("Content-Length", 0) or 0)
            if length:
                self.rfile.read(length)
        if counts[self.command] <= self.server.fail_first:  # type: ignore[attr-defined]
            body = json.dumps({"error": "warming up"}).encode()
            status = 503
        else:
            body = json.dumps({"ok": True}).encode()
            status = 200
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = _respond
    do_POST = _respond


@pytest.fixture
def flaky_server():
    def spawn(fail_first: int):
        httpd = ThreadingHTTPServer(("127.0.0.1", 0), _FlakyHandler)
        httpd.fail_first = fail_first  # type: ignore[attr-defined]
        httpd.counts = {}  # type: ignore[attr-defined]
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        servers.append(httpd)
        return httpd, f"http://127.0.0.1:{httpd.server_address[1]}"

    servers: list = []
    yield spawn
    for httpd in servers:
        httpd.shutdown()
        httpd.server_close()


def make_client(url: str, **overrides) -> ServiceClient:
    options = dict(retries=3, retry_base=0.01, retry_cap=0.02)
    options.update(overrides)
    return ServiceClient(url, **options)


class TestClientRetry:
    def test_get_retries_through_transient_503(self, flaky_server):
        httpd, url = flaky_server(fail_first=2)
        assert make_client(url).health() == {"ok": True}
        assert httpd.counts["GET"] == 3

    def test_get_gives_up_after_budget(self, flaky_server):
        httpd, url = flaky_server(fail_first=99)
        with pytest.raises(TransientServiceError) as excinfo:
            make_client(url).health()
        assert excinfo.value.reason == "http"
        assert excinfo.value.status == 503
        assert httpd.counts["GET"] == 3

    def test_post_never_retries(self, flaky_server):
        httpd, url = flaky_server(fail_first=99)
        with pytest.raises(TransientServiceError) as excinfo:
            make_client(url)._request("POST", "/v1/fleet/heartbeat", {"x": 1})
        assert excinfo.value.reason == "http"
        assert httpd.counts["POST"] == 1  # exactly one attempt

    def test_connection_refused_is_unreachable(self):
        client = make_client("http://127.0.0.1:9", retries=1)
        with pytest.raises(TransientServiceError) as excinfo:
            client.health()
        assert excinfo.value.reason == "unreachable"

    def test_non_transient_errors_are_not_retried(self, flaky_server):
        httpd, url = flaky_server(fail_first=0)
        client = make_client(url)
        with pytest.raises(ServiceError) as excinfo:
            client._request("PUT", "/v1/anything")  # 501 from BaseHTTP
        assert not isinstance(excinfo.value, TransientServiceError)

    def test_retries_validated(self):
        with pytest.raises(ValueError):
            ServiceClient("http://127.0.0.1:9", retries=0)


# ----------------------------------------------------------------------
# ResultStore: busy_timeout + bounded locked-write retry
# ----------------------------------------------------------------------


def _sample() -> tuple:
    ts = TaskSet.of((2, 6, 10), (3, 11, 16))
    fingerprint = AnalysisContext.of(ts).fingerprint
    return fingerprint, analyze(ts)


class TestStoreLocking:
    def test_busy_timeout_pragma_applied(self, tmp_path):
        with ResultStore(tmp_path / "s.sqlite", busy_timeout=1.25) as store:
            (value,) = store._conn.execute("PRAGMA busy_timeout").fetchone()
            assert value == 1250

    def test_knobs_validated(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path / "s.sqlite", busy_timeout=-1)
        with pytest.raises(ValueError):
            ResultStore(tmp_path / "s.sqlite", locked_retries=0)

    def test_write_lands_after_lock_released(self, tmp_path):
        """busy_timeout=0 forces the app-level retry loop to do the
        waiting: the lock is held past the first attempt and released
        before the budget runs out."""
        path = tmp_path / "s.sqlite"
        fingerprint, result = _sample()
        with ResultStore(path, busy_timeout=0, locked_retries=5) as store:
            blocker = sqlite3.connect(path, check_same_thread=False)
            blocker.execute("BEGIN IMMEDIATE")
            release = threading.Timer(0.12, blocker.commit)
            release.start()
            try:
                store.put(fingerprint, "qpa", {}, result)
            finally:
                release.join()
                blocker.close()
            cached = store.get(fingerprint, "qpa", {})
            assert cached is not None
            assert cached.verdict == result.verdict

    def test_persistent_lock_drops_write_gracefully(self, tmp_path):
        path = tmp_path / "s.sqlite"
        fingerprint, result = _sample()
        with ResultStore(path, busy_timeout=0, locked_retries=2) as store:
            blocker = sqlite3.connect(path, check_same_thread=False)
            blocker.execute("BEGIN IMMEDIATE")
            try:
                store.put(fingerprint, "qpa", {}, result)  # must not raise
            finally:
                blocker.rollback()
                blocker.close()
            assert store.get(fingerprint, "qpa", {}) is None
            # The store stays usable once the lock clears.
            store.put(fingerprint, "qpa", {}, result)
            assert store.get(fingerprint, "qpa", {}) is not None

    def test_store_context_retries_too(self, tmp_path):
        path = tmp_path / "s.sqlite"
        fingerprint, _ = _sample()
        with ResultStore(path, busy_timeout=0, locked_retries=5) as store:
            blocker = sqlite3.connect(path, check_same_thread=False)
            blocker.execute("BEGIN IMMEDIATE")
            release = threading.Timer(0.12, blocker.commit)
            release.start()
            try:
                store.store_context(fingerprint, {"qpa_state": {"t": 1}})
            finally:
                release.join()
                blocker.close()
            assert store.load_context(fingerprint) is not None


# ----------------------------------------------------------------------
# JobQueue.shutdown: drain vs cancel
# ----------------------------------------------------------------------


class _GatedRunner:
    """Blocks inside ``run`` until released — a job that will not end
    on its own, which is exactly what shutdown must handle."""

    jobs = 1

    def __init__(self):
        self.gate = threading.Event()
        self.started = threading.Event()

    def run(self, requests):
        self.started.set()
        self.gate.wait(10)
        from repro.engine import BatchRunner

        return BatchRunner(jobs=1).run(requests)


def _requests(count: int = 1):
    ts = TaskSet.of((2, 6, 10), (3, 11, 16))
    return [
        AnalysisRequest(source=ts, test="all-approx", options={})
        for _ in range(count)
    ]


class TestShutdown:
    def test_cancel_shutdown_sweeps_running_and_queued(self):
        runner = _GatedRunner()
        queue = JobQueue(runner=runner)
        running = queue.submit(_requests())
        assert runner.started.wait(5)
        queued = queue.submit(_requests())
        queue.shutdown(timeout=0.3)
        runner.gate.set()  # let the stuck worker thread exit

        for job_id in (running, queued):
            snap = queue.status(job_id)
            assert snap["state"] == JobState.CANCELLED
            assert snap["error"] == "cancelled_by_shutdown"
            assert snap["finished_at"] is not None

        # A worker finishing late must not resurrect the swept job.
        time.sleep(0.2)
        assert queue.status(running)["state"] == JobState.CANCELLED

    def test_drain_shutdown_finishes_backlog(self):
        queue = JobQueue()
        jobs = [queue.submit(_requests()) for _ in range(3)]
        queue.shutdown(timeout=10.0, drain=True)
        for job_id in jobs:
            snap = queue.status(job_id)
            assert snap["state"] == JobState.DONE
            assert snap["error"] is None

    def test_drain_deadline_cancels_stragglers(self):
        runner = _GatedRunner()
        queue = JobQueue(runner=runner)
        job_id = queue.submit(_requests())
        assert runner.started.wait(5)
        queue.shutdown(timeout=0.3, drain=True)
        runner.gate.set()
        snap = queue.status(job_id)
        assert snap["state"] == JobState.CANCELLED
        assert snap["error"] == "cancelled_by_shutdown"

    def test_shutdown_is_idempotent(self):
        queue = JobQueue()
        queue.shutdown()
        queue.shutdown()  # no-op, no exception

    def test_user_cancel_keeps_its_own_reason(self):
        runner = _GatedRunner()
        queue = JobQueue(runner=runner)
        queue.submit(_requests())  # occupies the single worker
        assert runner.started.wait(5)
        # Cancelling a still-queued job must not look like a shutdown.
        queued = queue.submit(_requests())
        snap = queue.cancel(queued)
        assert snap["state"] == JobState.CANCELLED
        assert snap["error"] != "cancelled_by_shutdown"
        runner.gate.set()
        queue.shutdown(timeout=5.0)

"""Observability endpoints: /v1/metrics, /v1/events, queue timestamps."""

import json
import urllib.request

import pytest

from repro.engine import clear_context_cache
from repro.generation import generate_taskset
from repro.service import AnalysisServer, ServiceClient, ServiceError


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_context_cache()
    yield
    clear_context_cache()


@pytest.fixture(scope="module")
def server():
    with AnalysisServer(port=0, sampler_interval=0.2) as live:
        yield live


@pytest.fixture
def client(server):
    return ServiceClient(server.url)


@pytest.fixture(scope="module")
def tasks():
    return generate_taskset(n=6, utilization=0.7, seed=11)


def _finished_job(client, tasks):
    job = client.submit([tasks], test="qpa")
    return client.wait(job, timeout=30)


class TestMetricsEndpoint:
    def test_text_exposition_is_well_formed(self, server, client, tasks):
        _finished_job(client, tasks)
        request = urllib.request.Request(server.url + "/v1/metrics")
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            text = response.read().decode("utf-8")
        families = set()
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                name, kind = line.split()[2:4]
                assert kind in ("counter", "gauge", "histogram")
                families.add(name)
        # The layers the acceptance criteria call out are all present.
        for expected in (
            "repro_engine_analyses_total",
            "repro_kernel_primitive_calls_total",
            "repro_kernel_qpa_iterations",
            "repro_store_hits_total",
            "repro_queue_jobs_total",
            "repro_queue_latency_seconds",
            "repro_admission_decisions_total",
            "repro_http_requests_total",
            "repro_process_max_rss_bytes",
        ):
            assert expected in families, expected

    def test_analyses_counter_reflects_submissions(self, client, tasks):
        _finished_job(client, tasks)
        text = client.metrics_text()
        line = next(
            l
            for l in text.splitlines()
            if l.startswith('repro_engine_analyses_total{test="qpa"}')
        )
        assert int(line.rsplit(" ", 1)[1]) >= 1

    def test_json_snapshot_shape(self, client, tasks):
        _finished_job(client, tasks)
        document = client.metrics()
        metrics = document["metrics"]
        queue = metrics["repro_queue_latency_seconds"]
        assert queue["type"] == "histogram"
        series = queue["series"][0]
        assert series["count"] >= 1
        assert series["buckets"][-1]["le"] == "+Inf"

    def test_unknown_format_is_400(self, client):
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/v1/metrics?format=xml")
        assert err.value.status == 400

    def test_http_requests_counter_tracks_endpoints(self, client):
        client.metrics_text()
        document = client.metrics()
        series = document["metrics"]["repro_http_requests_total"]["series"]
        endpoints = {tuple(sorted(s["labels"].items())): s["value"] for s in series}
        key = (("endpoint", "/v1/metrics"), ("method", "GET"))
        assert endpoints.get(key, 0) >= 2


class TestEventsEndpoint:
    def test_job_lifecycle_events_stream_in_order(self, client, tasks):
        snapshot = _finished_job(client, tasks)
        page = client.events(since=0, limit=500)
        mine = [
            e
            for e in page["events"]
            if e["payload"].get("job") == snapshot["job"]
        ]
        names = [e["name"] for e in mine]
        assert names == ["job.submitted", "job.started", "job.done"]
        sequences = [e["seq"] for e in mine]
        assert sequences == sorted(sequences)

    def test_cursor_pagination(self, client, tasks):
        _finished_job(client, tasks)
        first = client.events(since=0, limit=1)
        assert len(first["events"]) == 1
        rest = client.events(since=first["next"])
        assert all(e["seq"] > first["next"] for e in rest["events"])

    def test_bad_since_is_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.events(since=-1)
        assert err.value.status == 400

    def test_resource_sampler_feeds_events_and_gauges(self, client):
        page = client.events(since=0)
        samples = [e for e in page["events"] if e["name"] == "resource.sample"]
        assert samples, "sampler thread should have emitted at least once"
        assert samples[-1]["payload"]["threads"] >= 1
        metrics = client.metrics()["metrics"]
        assert metrics["repro_process_max_rss_bytes"]["series"][0]["value"] > 0


class TestQueueTimestamps:
    def test_job_document_carries_queue_latency(self, client, tasks):
        snapshot = _finished_job(client, tasks)
        assert snapshot["queued_at"] == snapshot["created_at"]
        assert snapshot["started_at"] >= snapshot["queued_at"]
        assert snapshot["finished_at"] >= snapshot["started_at"]
        latency = snapshot["queue_latency_seconds"]
        assert latency is not None
        assert latency >= 0
        assert latency == pytest.approx(
            snapshot["started_at"] - snapshot["created_at"], abs=1e-9
        )

    def test_queued_job_has_no_latency_yet(self):
        from repro.service.jobs import Job

        job = Job(id="x", kind="single", requests=[])
        assert job.queue_latency_seconds is None
        snapshot = job.snapshot()
        assert snapshot["state"] == "queued"
        assert snapshot["queue_latency_seconds"] is None
        assert snapshot["queued_at"] == snapshot["created_at"]


class TestServerJournal:
    def test_journal_written_and_detached_on_close(self, tmp_path, tasks):
        path = tmp_path / "events.jsonl"
        with AnalysisServer(
            port=0, sampler_interval=None, journal=str(path)
        ) as live:
            client = ServiceClient(live.url)
            job = client.submit([tasks], test="qpa")
            client.wait(job, timeout=30)
        lines = path.read_text(encoding="utf-8").splitlines()
        names = [json.loads(line)["name"] for line in lines]
        assert "job.submitted" in names
        assert "job.done" in names

"""Admission-session HTTP API: lifecycle, events, decision log, errors."""

import json
import urllib.error
import urllib.request

import pytest

from repro.generation import generate_taskset, generate_trace
from repro.model import SporadicTask, TaskSet, taskset_to_dict
from repro.online import ArrivalEvent
from repro.service import AnalysisServer, ServiceClient, ServiceError


@pytest.fixture(scope="module")
def server():
    with AnalysisServer(port=0) as live:
        yield live


@pytest.fixture
def client(server):
    return ServiceClient(server.url)


def _post_raw(server, path, document):
    data = json.dumps(document).encode("utf-8")
    request = urllib.request.Request(
        server.url + path, data=data,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


class TestSessionLifecycle:
    def test_create_apply_close(self, server, client):
        tasks = generate_taskset(n=6, utilization=0.5, seed=8)
        status, body = _post_raw(
            server,
            "/v1/admission",
            {"taskset": taskset_to_dict(tasks), "name": "live", "epsilon": "1/8"},
        )
        assert status == 201
        session_id = body["session"]
        assert body["tasks"] == 1  # the seeded system is one entry
        assert body["epsilon"] == "1/8" and body["level"] == 8

        trace = generate_trace("churn", 20, seed=2)
        decisions = client.admission_events(session_id, list(trace))
        assert len(decisions) == 20
        assert [d["index"] for d in decisions] == list(range(20))
        for decision in decisions:
            assert decision["verdict"] in ("feasible", "infeasible")
            assert decision["stage"]

        listed = client.admission_sessions()
        assert session_id in {s["session"] for s in listed}

        stats = client.admission_stats(session_id)
        assert stats["events"] == 20 and stats["decisions"] == 20

        final = client.close_admission_session(session_id)
        assert final["session"] == session_id
        with pytest.raises(ServiceError) as err:
            client.admission_stats(session_id)
        assert err.value.status == 404

    def test_decision_log_cursor(self, client):
        session_id = client.create_admission_session(name="cursor")
        task = SporadicTask(wcet=1, deadline=8, period=10)
        client.admission_events(
            session_id, [ArrivalEvent.arrive(f"t{i}", task, time=i) for i in range(5)]
        )
        log = client.admission_decisions(session_id, since=3)
        assert log["since"] == 3 and log["next"] == 5
        assert [d["index"] for d in log["decisions"]] == [3, 4]
        # The cursor 'streams': nothing new returns an empty page.
        assert client.admission_decisions(session_id, since=5)["decisions"] == []
        client.close_admission_session(session_id)

    def test_rejections_come_back_with_witness_or_gate(self, client):
        session_id = client.create_admission_session(name="tight")
        fat = SporadicTask(wcet=9, deadline=9, period=10)
        tight = SporadicTask(wcet=2, deadline=2, period=10)
        decisions = client.admission_events(
            session_id,
            [
                ArrivalEvent.arrive("fat", fat, time=0),
                ArrivalEvent.arrive("tight", tight, time=1),
                ArrivalEvent.depart("fat", time=2),
            ],
        )
        assert decisions[0]["admitted"] is True
        assert decisions[1]["admitted"] is False
        assert decisions[1]["stage"] in ("utilization-gate", "exact")
        assert decisions[2]["event"] == "depart" and decisions[2]["admitted"]
        client.close_admission_session(session_id)

    def test_epsilon_none_disables_filter(self, client):
        session_id = client.create_admission_session(epsilon=None)
        task = SporadicTask(wcet=1, deadline=8, period=10)
        (decision,) = client.admission_events(
            session_id, [ArrivalEvent.arrive("a", task)]
        )
        assert decision["stage"] == "exact"
        client.close_admission_session(session_id)


class TestSessionErrors:
    def test_unknown_session_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.admission_events(
                "nope", [{"kind": "depart", "name": "x"}]
            )
        assert err.value.status == 404

    def test_infeasible_initial_taskset_is_400(self, client):
        bad = TaskSet.of((1, 1, 2), (1, 1, 2))
        with pytest.raises(ServiceError) as err:
            client.create_admission_session(taskset=bad)
        assert err.value.status == 400
        assert "infeasible" in err.value.message

    def test_bad_epsilon_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post_raw(server, "/v1/admission", {"epsilon": "three halves-ish"})
        assert err.value.code == 400

    def test_malformed_events_are_400(self, client):
        session_id = client.create_admission_session()
        with pytest.raises(ServiceError) as err:
            client.admission_events(session_id, [{"kind": "arrive"}])
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            client._request(
                "POST", f"/v1/admission/{session_id}/events", {"events": []}
            )
        assert err.value.status == 400
        client.close_admission_session(session_id)

    def test_bad_since_is_400(self, client):
        session_id = client.create_admission_session()
        with pytest.raises(ServiceError) as err:
            client._request(
                "GET", f"/v1/admission/{session_id}/decisions?since=-2"
            )
        assert err.value.status == 400
        client.close_admission_session(session_id)

    def test_cache_stats_counts_sessions(self, client):
        session_id = client.create_admission_session()
        stats = client.cache_stats()
        assert stats["admission"]["sessions"] >= 1
        client.close_admission_session(session_id)


class TestSessionManagerLimits:
    def test_manager_refuses_creation_when_full(self):
        from repro.model.validation import ModelError
        from repro.service import AdmissionSessionManager

        manager = AdmissionSessionManager(max_sessions=2)
        manager.create()
        manager.create()
        with pytest.raises(ModelError, match="session limit"):
            manager.create()

    def test_partial_batch_failure_names_the_applied_prefix(self, client):
        session_id = client.create_admission_session()
        with pytest.raises(ServiceError) as err:
            client.admission_events(
                session_id,
                [
                    {"kind": "arrive", "name": "a", "time": 0,
                     "task": {"wcet": 1, "deadline": 8, "period": 10}},
                    {"kind": "arrive", "name": "a", "time": 1,
                     "task": {"wcet": 1, "deadline": 8, "period": 10}},
                ],
            )
        assert err.value.status == 400
        assert "1 earlier event(s)" in err.value.message
        # The first event of the batch really was applied.
        assert client.admission_stats(session_id)["events"] == 1
        client.close_admission_session(session_id)


class TestDecisionLogCap:
    def test_log_prunes_but_cursor_survives(self):
        from repro.online import AdmissionController
        from repro.service import AdmissionSession

        session = AdmissionSession(
            "s1", AdmissionController(), max_log=10
        )
        task = SporadicTask(wcet=1, deadline=800, period=1000)
        for i in range(25):
            document = session.apply(
                ArrivalEvent.arrive(f"t{i}", task, time=i)
            )
            assert document["index"] == i  # indices stay absolute
        snapshot = session.snapshot()
        assert snapshot["decisions"] == 25
        assert snapshot["log_retained_from"] > 0
        assert len(session.decisions) <= 10
        # A tail cursor still pages correctly across the prune.
        tail = session.log(since=24)
        assert [d["index"] for d in tail] == [24]
        # A cursor behind the retained window gets what is left.
        stale = session.log(since=0)
        assert stale[0]["index"] == snapshot["log_retained_from"]

    def test_http_next_cursor_is_absolute(self, client):
        session_id = client.create_admission_session()
        task = SporadicTask(wcet=1, deadline=8, period=10)
        client.admission_events(
            session_id,
            [ArrivalEvent.arrive(f"n{i}", task, time=i) for i in range(4)],
        )
        log = client.admission_decisions(session_id, since=2)
        assert log["next"] == 4
        assert client.admission_decisions(session_id, since=4)["next"] == 4
        client.close_admission_session(session_id)

"""Unit tests for the benchmark trajectory gate (benchmarks/bench_diff.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[2] / "benchmarks" / "bench_diff.py"


@pytest.fixture(scope="module")
def bench_diff():
    spec = importlib.util.spec_from_file_location("bench_diff", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write(directory: Path, name: str, payload: dict) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / name).write_text(json.dumps(payload), encoding="utf-8")


def test_identical_records_pass(bench_diff, tmp_path, capsys):
    _write(tmp_path / "base", "BENCH_x.json", {"run_seconds": 1.0, "sets": 5})
    _write(tmp_path / "curr", "BENCH_x.json", {"run_seconds": 1.0, "sets": 5})
    code = bench_diff.main(
        ["--baseline", str(tmp_path / "base"), "--current", str(tmp_path / "curr")]
    )
    assert code == 0
    assert "no wall-time regressions" in capsys.readouterr().out


def test_regression_beyond_threshold_fails(bench_diff, tmp_path, capsys):
    _write(tmp_path / "base", "BENCH_x.json", {"run_seconds": 1.0})
    _write(tmp_path / "curr", "BENCH_x.json", {"run_seconds": 1.3})
    code = bench_diff.main(
        ["--baseline", str(tmp_path / "base"), "--current", str(tmp_path / "curr")]
    )
    assert code == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_regression_within_threshold_passes(bench_diff, tmp_path):
    _write(tmp_path / "base", "BENCH_x.json", {"run_seconds": 1.0})
    _write(tmp_path / "curr", "BENCH_x.json", {"run_seconds": 1.2})
    code = bench_diff.main(
        ["--baseline", str(tmp_path / "base"), "--current", str(tmp_path / "curr")]
    )
    assert code == 0


def test_min_of_n_strips_noise(bench_diff, tmp_path):
    """One noisy run does not fail the gate when a clean run exists."""
    _write(tmp_path / "base", "BENCH_x.json", {"run_seconds": 1.0})
    _write(tmp_path / "noisy", "BENCH_x.json", {"run_seconds": 2.0})
    _write(tmp_path / "clean", "BENCH_x.json", {"run_seconds": 1.05})
    code = bench_diff.main(
        [
            "--baseline", str(tmp_path / "base"),
            "--current", str(tmp_path / "noisy"),
            "--current", str(tmp_path / "clean"),
        ]
    )
    assert code == 0


def test_improvements_are_summarized(bench_diff, tmp_path, capsys):
    """Speedups past the threshold get their own summary and exit 0."""
    _write(tmp_path / "base", "BENCH_x.json", {"run_seconds": 1.0})
    _write(tmp_path / "curr", "BENCH_x.json", {"run_seconds": 0.25})
    code = bench_diff.main(
        ["--baseline", str(tmp_path / "base"), "--current", str(tmp_path / "curr")]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "1 wall-time improvement(s):" in out
    assert "4.00x faster" in out


def test_zero_current_timing_does_not_crash(bench_diff, tmp_path, capsys):
    """round(x, 6) can floor a sub-µs walk to 0.0; no division blowup."""
    _write(tmp_path / "base", "BENCH_x.json", {"run_seconds": 1.0})
    _write(tmp_path / "curr", "BENCH_x.json", {"run_seconds": 0.0})
    code = bench_diff.main(
        ["--baseline", str(tmp_path / "base"), "--current", str(tmp_path / "curr")]
    )
    assert code == 0
    assert "now below the noise floor" in capsys.readouterr().out


def test_improvement_within_threshold_not_summarized(bench_diff, tmp_path, capsys):
    _write(tmp_path / "base", "BENCH_x.json", {"run_seconds": 1.0})
    _write(tmp_path / "curr", "BENCH_x.json", {"run_seconds": 0.9})
    code = bench_diff.main(
        ["--baseline", str(tmp_path / "base"), "--current", str(tmp_path / "curr")]
    )
    assert code == 0
    assert "improvement(s):" not in capsys.readouterr().out


def test_sub_floor_timings_never_gate(bench_diff, tmp_path, capsys):
    _write(tmp_path / "base", "BENCH_x.json", {"tiny_seconds": 0.001})
    _write(tmp_path / "curr", "BENCH_x.json", {"tiny_seconds": 0.004})
    code = bench_diff.main(
        ["--baseline", str(tmp_path / "base"), "--current", str(tmp_path / "curr")]
    )
    assert code == 0
    assert "noise (below floor)" in capsys.readouterr().out


def test_disjoint_files_are_skipped_not_failed(bench_diff, tmp_path, capsys):
    _write(tmp_path / "base", "BENCH_old.json", {"run_seconds": 1.0})
    _write(tmp_path / "curr", "BENCH_new.json", {"run_seconds": 9.9})
    code = bench_diff.main(
        ["--baseline", str(tmp_path / "base"), "--current", str(tmp_path / "curr")]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "no committed baseline yet" in out
    assert "benchmark not rerun" in out


def test_missing_directories_error(bench_diff, tmp_path):
    _write(tmp_path / "curr", "BENCH_x.json", {"run_seconds": 1.0})
    assert (
        bench_diff.main(
            ["--baseline", str(tmp_path / "empty"),
             "--current", str(tmp_path / "curr")]
        )
        == 2
    )
    _write(tmp_path / "base", "BENCH_x.json", {"run_seconds": 1.0})
    assert (
        bench_diff.main(
            ["--baseline", str(tmp_path / "base"),
             "--current", str(tmp_path / "nothing")]
        )
        == 2
    )


def test_calibration_normalizes_machine_speed(bench_diff, tmp_path, capsys):
    """A 2x-slower machine with 2x-slower timings is not a regression."""
    _write(
        tmp_path / "base",
        "BENCH_x.json",
        {"run_seconds": 1.0, "calibration_seconds": 0.1},
    )
    _write(
        tmp_path / "curr",
        "BENCH_x.json",
        {"run_seconds": 2.0, "calibration_seconds": 0.2},
    )
    code = bench_diff.main(
        ["--baseline", str(tmp_path / "base"), "--current", str(tmp_path / "curr")]
    )
    assert code == 0
    assert "machine-speed scale" in capsys.readouterr().out


def test_calibration_does_not_mask_real_regressions(bench_diff, tmp_path):
    """Same machine speed, slower code: still a regression."""
    _write(
        tmp_path / "base",
        "BENCH_x.json",
        {"run_seconds": 1.0, "calibration_seconds": 0.1},
    )
    _write(
        tmp_path / "curr",
        "BENCH_x.json",
        {"run_seconds": 1.5, "calibration_seconds": 0.1},
    )
    assert (
        bench_diff.main(
            ["--baseline", str(tmp_path / "base"),
             "--current", str(tmp_path / "curr")]
        )
        == 1
    )


def test_non_timing_keys_never_gate(bench_diff, tmp_path):
    _write(
        tmp_path / "base",
        "BENCH_x.json",
        {"run_seconds": 1.0, "sets_per_second": 100.0},
    )
    _write(
        tmp_path / "curr",
        "BENCH_x.json",
        {"run_seconds": 1.0, "sets_per_second": 1.0},  # 100x "worse", not gated
    )
    assert (
        bench_diff.main(
            ["--baseline", str(tmp_path / "base"),
             "--current", str(tmp_path / "curr")]
        )
        == 0
    )


def test_trajectory_summary_aggregates_across_files(bench_diff, tmp_path, capsys):
    """One geomean line per file plus an overall cross-file line."""
    _write(tmp_path / "base", "BENCH_a.json", {"x_seconds": 1.0, "y_seconds": 4.0})
    _write(tmp_path / "curr", "BENCH_a.json", {"x_seconds": 0.5, "y_seconds": 2.0})
    _write(tmp_path / "base", "BENCH_b.json", {"z_seconds": 1.0})
    _write(tmp_path / "curr", "BENCH_b.json", {"z_seconds": 1.0})
    code = bench_diff.main(
        ["--baseline", str(tmp_path / "base"), "--current", str(tmp_path / "curr")]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "benchmark trajectory" in out
    assert "BENCH_a.json" in out and "0.500x" in out
    assert "BENCH_b.json" in out and "1.000x" in out
    # geomean(0.5, 0.5, 1.0) = 0.63x overall, two improvements past 25%
    assert "overall: 0.630x across 3 metric(s) in 2 file(s)" in out
    assert "2 improved, 0 regressed" in out


def test_trajectory_summary_geomean_balances_win_and_loss(bench_diff):
    """A 2x win and a 2x loss cancel to 1.0x, not an arithmetic 1.25x."""
    baseline = {"BENCH_x.json": {"a_seconds": 1.0, "b_seconds": 1.0}}
    current = {"BENCH_x.json": {"a_seconds": 2.0, "b_seconds": 0.5}}
    lines = bench_diff.trajectory_summary(baseline, current, 0.25, 0.05)
    assert any("1.000x  over 2 metric(s)" in line for line in lines)
    assert any("1 improved, 1 regressed" in line for line in lines)


def test_trajectory_summary_skips_sub_floor_and_disjoint(bench_diff):
    """Sub-floor metrics and unshared files contribute nothing."""
    baseline = {
        "BENCH_x.json": {"tiny_seconds": 0.001},
        "BENCH_gone.json": {"run_seconds": 1.0},
    }
    current = {"BENCH_x.json": {"tiny_seconds": 0.004}}
    assert bench_diff.trajectory_summary(baseline, current, 0.25, 0.05) == []


def test_summary_json_written_and_machine_readable(bench_diff, tmp_path):
    _write(tmp_path / "base", "BENCH_a.json", {"run_seconds": 1.0})
    _write(tmp_path / "base", "BENCH_b.json", {"run_seconds": 2.0})
    _write(tmp_path / "curr", "BENCH_a.json", {"run_seconds": 0.5})
    _write(tmp_path / "curr", "BENCH_b.json", {"run_seconds": 2.0})
    out = tmp_path / "trajectory.json"
    code = bench_diff.main(
        [
            "--baseline", str(tmp_path / "base"),
            "--current", str(tmp_path / "curr"),
            "--summary-json", str(out),
        ]
    )
    assert code == 0
    data = json.loads(out.read_text(encoding="utf-8"))
    assert data["metrics"] == 2
    assert data["improved"] == 1
    assert data["regressed"] == 0
    assert data["threshold"] == 0.25
    by_file = {entry["file"]: entry for entry in data["files"]}
    assert by_file["BENCH_a.json"]["geomean_ratio"] == 0.5
    assert by_file["BENCH_b.json"]["geomean_ratio"] == 1.0
    # overall = geomean(0.5, 1.0)
    assert abs(data["overall_geomean_ratio"] - 0.5 ** 0.5) < 1e-9


def test_summary_json_empty_when_no_shared_metrics(bench_diff, tmp_path):
    _write(tmp_path / "base", "BENCH_a.json", {"tiny_seconds": 0.001})
    _write(tmp_path / "curr", "BENCH_a.json", {"tiny_seconds": 0.002})
    out = tmp_path / "trajectory.json"
    code = bench_diff.main(
        [
            "--baseline", str(tmp_path / "base"),
            "--current", str(tmp_path / "curr"),
            "--summary-json", str(out),
        ]
    )
    assert code == 0
    assert json.loads(out.read_text(encoding="utf-8")) == {}

"""Integration: all exact tests agree, sufficiency chain holds.

This is the library's central correctness argument (DESIGN.md §6.1):
four independently implemented exact algorithms — processor demand, QPA,
Dynamic Error, All-Approximated — plus the brute-force staircase scan
must return identical verdicts on every input, and the sufficient tests
must form an implication chain into them.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    busy_period_of_components,
    devi_test,
    first_overflow,
    liu_layland_test,
    processor_demand_test,
    qpa_test,
)
from repro.core import all_approx_test, dynamic_test, superposition_test
from repro.model import SporadicTask, TaskSet, as_components
from repro.result import Verdict

from ..conftest import random_feasible_candidate

EXACT_TESTS = [processor_demand_test, qpa_test, dynamic_test, all_approx_test]


task_strategy = st.builds(
    SporadicTask,
    wcet=st.integers(min_value=1, max_value=8),
    deadline=st.integers(min_value=1, max_value=40),
    period=st.integers(min_value=1, max_value=30),
)

taskset_strategy = st.lists(task_strategy, min_size=1, max_size=5).map(TaskSet)


class TestExactAgreement:
    @given(taskset_strategy)
    @settings(max_examples=300, deadline=None)
    def test_all_exact_tests_agree_with_brute_force(self, ts):
        if ts.utilization > 1:
            for test in EXACT_TESTS:
                assert test(ts).verdict is Verdict.INFEASIBLE
            return
        horizon = busy_period_of_components(as_components(ts))
        truth = first_overflow(ts, horizon) is None
        for test in EXACT_TESTS:
            assert test(ts).is_feasible == truth, (test.__name__, ts.summary())

    def test_large_randomised_sweep(self, rng):
        """Higher-volume version with plain randomness (hypothesis would
        shrink; here we want raw coverage)."""
        outcomes = {True: 0, False: 0}
        for _ in range(800):
            ts = random_feasible_candidate(rng)
            verdicts = {test(ts).is_feasible for test in EXACT_TESTS}
            assert len(verdicts) == 1, ts.summary()
            outcomes[verdicts.pop()] += 1
        assert min(outcomes.values()) > 100


class TestSufficiencyChain:
    """liu-layland(D>=T) => feasible; devi => superpos(1) => ... => exact."""

    @given(taskset_strategy)
    @settings(max_examples=200, deadline=None)
    def test_chain(self, ts):
        if ts.utilization > 1:
            return
        exact = processor_demand_test(ts).is_feasible
        ll = liu_layland_test(ts)
        if ll.verdict is Verdict.FEASIBLE:
            assert exact
        devi = devi_test(ts)
        levels = [1, 2, 4, 8]
        sp = [superposition_test(ts, level).is_feasible for level in levels]
        if devi.is_feasible:
            assert sp[0], ts.summary()
        for weaker, stronger in zip(sp, sp[1:]):
            if weaker:
                assert stronger, ts.summary()
        if sp[-1]:
            assert exact, ts.summary()


class TestWitnessCertificates:
    def test_every_infeasible_verdict_carries_checkable_witness(self, rng):
        from repro.analysis import dbf

        found = 0
        for _ in range(400):
            ts = random_feasible_candidate(rng)
            for test in EXACT_TESTS:
                r = test(ts)
                if r.is_infeasible:
                    found += 1
                    assert r.witness is not None, test.__name__
                    assert r.witness.exact, test.__name__
                    # Independent recomputation validates the certificate.
                    assert dbf(ts, r.witness.interval) > r.witness.interval
        assert found > 100

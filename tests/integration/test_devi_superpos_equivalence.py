"""Paper Lemma 2 (Section 3.5), mechanically verified.

Devi's sufficient test is ``SuperPos(1)``:

* acceptance by Devi implies acceptance by ``SuperPos(1)`` on *every*
  system (the direction the paper proves);
* on constrained-deadline systems (``D <= T``) the two accept exactly
  the same sets — Devi's ``min(T, D)`` clamping only matters beyond
  ``D > T``, where Devi is strictly more pessimistic.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import devi_test
from repro.core import superposition_test
from repro.model import SporadicTask, TaskSet

constrained_task = st.tuples(
    st.integers(min_value=1, max_value=12),   # wcet scale
    st.integers(min_value=1, max_value=50),   # deadline
    st.integers(min_value=1, max_value=60),   # period
).map(
    lambda cdt: SporadicTask(
        wcet=min(cdt[0], cdt[1], cdt[2]),
        deadline=min(cdt[1], cdt[2]),
        period=cdt[2],
    )
)

arbitrary_task = st.builds(
    SporadicTask,
    wcet=st.integers(min_value=1, max_value=12),
    deadline=st.integers(min_value=1, max_value=70),
    period=st.integers(min_value=1, max_value=60),
)


class TestLemma2:
    @given(st.lists(arbitrary_task, min_size=1, max_size=6).map(TaskSet))
    @settings(max_examples=400, deadline=None)
    def test_devi_implies_superpos1(self, ts):
        if devi_test(ts).is_feasible:
            assert superposition_test(ts, 1).is_feasible, ts.summary()

    @given(st.lists(constrained_task, min_size=1, max_size=6).map(TaskSet))
    @settings(max_examples=400, deadline=None)
    def test_equivalence_on_constrained_deadlines(self, ts):
        devi = devi_test(ts).is_feasible
        sp1 = superposition_test(ts, 1).is_feasible
        assert devi == sp1, ts.summary()

    @given(st.lists(constrained_task, min_size=1, max_size=6).map(TaskSet))
    @settings(max_examples=200, deadline=None)
    def test_effort_parity_on_acceptance(self, ts):
        """Accepted sets cost one comparison per (non-idle) task in both."""
        devi = devi_test(ts)
        if not devi.is_feasible:
            return
        sp1 = superposition_test(ts, 1)
        active = sum(1 for t in ts if t.wcet > 0)
        assert devi.iterations == active
        assert sp1.iterations <= active  # bound may skip trailing checks

    def test_strictness_beyond_constrained_deadlines(self):
        """A witness that the inclusion is strict for D > T: SuperPos(1)
        accepts, Devi rejects (its clamping discards D > T slack)."""
        ts = TaskSet.of((3, 4, 4), (4, 17, 5))
        # U = 3/4 + 4/5 > 1? 0.75 + 0.8 = 1.55 -> overloaded; pick another.
        ts = TaskSet.of((1, 2, 4), (6, 18, 8))
        assert ts.utilization <= 1
        devi = devi_test(ts).is_feasible
        sp1 = superposition_test(ts, 1).is_feasible
        # The pair must never contradict Lemma 2's direction:
        assert not (devi and not sp1)

"""Every shipped example must run to completion.

Examples are the quickstart documentation; a broken one is a
documentation bug.  The smoke test below discovers every ``*.py`` in
``examples/`` by glob, so a newly added script is covered the moment it
lands — no test edit required.  Each script is executed in-process with
stdout captured (and memoized, examples being deterministic); the
per-example landmark tests then check for characteristic lines rather
than full golden output, so cosmetic tweaks don't break the suite.
"""

import functools
import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

#: Every example script, discovered — not listed.
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES.glob("*.py"))


@functools.lru_cache(maxsize=None)
def run_example(name: str) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return buffer.getvalue()


class TestSmoke:
    def test_examples_were_discovered(self):
        assert "quickstart.py" in ALL_EXAMPLES
        assert len(ALL_EXAMPLES) >= 9

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_example_runs_and_prints(self, name):
        # Completing without raising and producing output is the bar
        # every example must clear, including ones added after this
        # test was written.
        assert run_example(name).strip()


class TestExamplesRun:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "all-approx" in out
        assert "EDF simulation" in out
        assert "infeasible" in out  # the overload demo

    def test_avionics_gap(self):
        out = run_example("avionics_gap.py")
        assert "weapon-release" in out
        assert "feasibility bounds" in out
        assert "infeasible" in out  # sensitivity sweep end

    def test_bursty_event_streams(self):
        out = run_example("bursty_event_streams.py")
        assert "demand components" in out
        assert "exact tests" in out

    def test_design_space_sweep(self):
        out = run_example("design_space_sweep.py")
        assert "saturated" in out

    def test_interrupt_heavy_system(self):
        out = run_example("interrupt_heavy_system.py")
        assert "period ratio" in out
        assert "fewer intervals" in out

    def test_shared_resources(self):
        out = run_example("shared_resources.py")
        assert "context-switch overhead" in out
        assert "EDF + SRP" in out
        assert "phased pair" in out

    def test_approximation_anatomy(self):
        out = run_example("approximation_anatomy.py")
        assert "SuperPos(1): crosses at" in out
        assert "#" in out  # the plot rendered

    def test_capacity_planning(self):
        out = run_example("capacity_planning.py")
        assert "exact system load" in out
        assert "per-task margins" in out

    def test_partitioned_system(self):
        out = run_example("partitioned_system.py")
        assert "minimum cores by heuristic" in out
        assert "global-EDF density bound" in out
        assert "partition verdict: schedulable" in out

"""Metamorphic properties: transformations with known verdict effects."""

import pytest

from repro.analysis import processor_demand_test
from repro.core import all_approx_test, dynamic_test
from repro.model import SporadicTask, TaskSet, task

from ..conftest import random_feasible_candidate

ALL_TESTS = [processor_demand_test, dynamic_test, all_approx_test]


class TestScalingInvariance:
    """Multiplying every time parameter by c > 0 changes nothing."""

    @pytest.mark.parametrize("factor", [2, 10, 1000])
    def test_verdict_and_effort_invariant(self, rng, factor):
        for _ in range(100):
            ts = random_feasible_candidate(rng)
            scaled = ts.scaled(factor)
            for test in ALL_TESTS:
                original = test(ts)
                transformed = test(scaled)
                assert original.verdict == transformed.verdict
                assert original.iterations == transformed.iterations
                assert original.revisions == transformed.revisions

    def test_fractional_scaling(self, rng):
        from fractions import Fraction

        for _ in range(50):
            ts = random_feasible_candidate(rng)
            scaled = ts.scaled(Fraction(1, 3))
            for test in ALL_TESTS:
                assert test(ts).verdict == test(scaled).verdict


class TestMonotonicity:
    def test_adding_zero_cost_task_changes_nothing(self, rng):
        for _ in range(80):
            ts = random_feasible_candidate(rng)
            extended = ts.extended([task(0, 1, 1)])
            for test in ALL_TESTS:
                assert test(ts).verdict == test(extended).verdict

    def test_removing_a_task_preserves_feasibility(self, rng):
        for _ in range(100):
            ts = random_feasible_candidate(rng)
            if len(ts) < 2:
                continue
            if processor_demand_test(ts).is_feasible:
                smaller = ts.without(0)
                for test in ALL_TESTS:
                    assert test(smaller).is_feasible, smaller.summary()

    def test_loosening_deadline_preserves_feasibility(self, rng):
        for _ in range(100):
            ts = random_feasible_candidate(rng)
            if not processor_demand_test(ts).is_feasible:
                continue
            loosened = TaskSet([t.with_deadline(t.deadline + 3) for t in ts])
            for test in ALL_TESTS:
                assert test(loosened).is_feasible, loosened.summary()

    def test_increasing_wcet_preserves_infeasibility(self, rng):
        found = 0
        for _ in range(200):
            ts = random_feasible_candidate(rng)
            if processor_demand_test(ts).is_feasible:
                continue
            found += 1
            heavier = TaskSet([t.with_wcet(t.wcet + 1) for t in ts])
            for test in ALL_TESTS:
                assert test(heavier).is_infeasible, heavier.summary()
        assert found > 20

    def test_extending_period_preserves_feasibility(self, rng):
        """Slower arrivals only reduce demand (sporadic semantics)."""
        from dataclasses import replace

        for _ in range(100):
            ts = random_feasible_candidate(rng)
            if not processor_demand_test(ts).is_feasible:
                continue
            slower = TaskSet([replace(t, period=t.period * 2) for t in ts])
            for test in ALL_TESTS:
                assert test(slower).is_feasible, slower.summary()

"""Property-based integration tests over richer input spaces.

These complement the per-module hypothesis tests with whole-pipeline
properties: event-stream systems through every exact test, serialization
fuzzing, and the public ``analyze`` dispatcher.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TESTS, analyze
from repro.analysis import (
    busy_period_of_components,
    first_overflow,
    processor_demand_test,
)
from repro.core import all_approx_test, dynamic_test
from repro.model import (
    EventStream,
    EventStreamTask,
    SporadicTask,
    TaskSet,
    as_components,
    loads_taskset,
    dumps_taskset,
    total_utilization,
)

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

burst_stream = st.builds(
    lambda count, spacing, slack: EventStream.burst(
        count=count,
        spacing=spacing,
        period=(count - 1) * spacing + slack if count > 1 else slack,
    ),
    count=st.integers(min_value=1, max_value=4),
    spacing=st.integers(min_value=1, max_value=5),
    slack=st.integers(min_value=5, max_value=40),
)

event_task = st.builds(
    EventStreamTask,
    stream=burst_stream,
    wcet=st.integers(min_value=1, max_value=4),
    deadline=st.integers(min_value=1, max_value=25),
)

sporadic_task = st.builds(
    SporadicTask,
    wcet=st.integers(min_value=1, max_value=6),
    deadline=st.integers(min_value=1, max_value=30),
    period=st.integers(min_value=2, max_value=25),
)

mixed_system = st.lists(
    st.one_of(sporadic_task, event_task), min_size=1, max_size=4
)

rational_time = st.fractions(
    min_value=Fraction(1, 8), max_value=40
).map(lambda f: f.limit_denominator(8))


class TestEventStreamSystems:
    @given(mixed_system)
    @settings(max_examples=150, deadline=None)
    def test_exact_tests_agree_on_mixed_systems(self, system):
        components = as_components(system)
        if total_utilization(components) > 1:
            return
        horizon = busy_period_of_components(components)
        truth = first_overflow(components, horizon) is None
        assert processor_demand_test(components).is_feasible == truth
        assert dynamic_test(components).is_feasible == truth
        assert all_approx_test(components).is_feasible == truth

    @given(event_task)
    @settings(max_examples=100, deadline=None)
    def test_flattening_preserves_demand(self, task):
        components = task.to_components()
        for interval in range(0, 120, 7):
            assert task.dbf(interval) == sum(
                c.dbf(interval) for c in components
            )


class TestRationalTimeSystems:
    @given(
        st.lists(
            st.tuples(rational_time, rational_time, rational_time),
            min_size=1,
            max_size=3,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_exact_tests_agree_on_rational_parameters(self, rows):
        tasks = [
            SporadicTask(
                wcet=min(c, d),
                deadline=d,
                period=t,
            )
            for c, d, t in rows
        ]
        ts = TaskSet(tasks)
        if ts.utilization > 1:
            return
        horizon = busy_period_of_components(as_components(ts))
        truth = first_overflow(ts, horizon) is None
        assert processor_demand_test(ts).is_feasible == truth
        assert all_approx_test(ts).is_feasible == truth

    @given(
        st.lists(
            st.tuples(rational_time, rational_time, rational_time),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_serialization_round_trip(self, rows):
        ts = TaskSet(
            [SporadicTask(wcet=c, deadline=d, period=t) for c, d, t in rows]
        )
        again = loads_taskset(dumps_taskset(ts))
        assert again == ts


class TestAnalyzeDispatcher:
    def test_every_registered_test_runs(self, simple_taskset):
        for name in TESTS:
            result = analyze(simple_taskset, name)
            assert result.test_name  # ran and produced a result

    def test_superpos_requires_level(self, simple_taskset):
        with pytest.raises(ValueError, match="level"):
            analyze(simple_taskset, "superpos")

    def test_level_rejected_elsewhere(self, simple_taskset):
        with pytest.raises(ValueError, match="level"):
            analyze(simple_taskset, "devi", level=2)

    def test_unknown_method(self, simple_taskset):
        with pytest.raises(ValueError, match="available"):
            analyze(simple_taskset, "magic")

    def test_default_is_all_approx(self, simple_taskset):
        assert analyze(simple_taskset).test_name == "all-approx"

"""Integration: the EDF simulation oracle agrees with every exact test."""

from repro.analysis import processor_demand_test
from repro.core import all_approx_test, dynamic_test
from repro.generation import GeneratorConfig, TaskSetGenerator
from repro.model import EventStream, EventStreamTask, as_components, task
from repro.sim import simulate_feasibility

from ..conftest import random_feasible_candidate


class TestSimulationAgreement:
    def test_small_random_sets(self, rng):
        feasible = infeasible = 0
        for _ in range(250):
            ts = random_feasible_candidate(rng, max_tasks=4, max_period=18)
            analytic = all_approx_test(ts).is_feasible
            assert analytic == dynamic_test(ts).is_feasible
            assert analytic == simulate_feasibility(ts).is_feasible, ts.summary()
            feasible += analytic
            infeasible += not analytic
        assert feasible > 30 and infeasible > 30

    def test_generated_high_utilization_sets(self):
        gen = TaskSetGenerator(
            GeneratorConfig(
                tasks=(5, 10),
                utilization=(0.92, 0.99),
                period_range=(10, 200),
                gap=(0.0, 0.4),
            ),
            seed=77,
        )
        for ts in gen.sets(40):
            analytic = processor_demand_test(ts).is_feasible
            assert analytic == simulate_feasibility(ts).is_feasible, ts.summary()

    def test_event_stream_systems(self, rng):
        for trial in range(60):
            system = [
                EventStreamTask(
                    stream=EventStream.burst(
                        count=rng.randint(1, 3),
                        spacing=rng.randint(1, 3),
                        period=rng.randint(12, 40),
                    ),
                    wcet=rng.randint(1, 3),
                    deadline=rng.randint(2, 10),
                ),
                task(rng.randint(1, 4), rng.randint(3, 20), rng.randint(5, 25)),
            ]
            comps = as_components(system)
            from repro.model import total_utilization

            if total_utilization(comps) > 1:
                continue
            analytic = all_approx_test(comps).is_feasible
            assert analytic == simulate_feasibility(system).is_feasible, system

"""Stress: cross-validation on generator-realistic workloads.

The other integration tests use tiny hand-rolled sets (good for
shrinking); this module runs the full test stack over populations the
*experiments* actually use — dozens of tasks, 90%+ utilization, wide
period ranges — where bookkeeping bugs (approximation rebasing, queue
tie-breaks, bound interactions) would actually surface.
"""

import random

from repro.analysis import (
    BoundMethod,
    devi_test,
    processor_demand_test,
    qpa_test,
)
from repro.core import all_approx_test, dynamic_test, superposition_test
from repro.generation import GeneratorConfig, TaskSetGenerator


def population(seed, count, **overrides):
    defaults = dict(
        tasks=(10, 40),
        utilization=(0.90, 0.99),
        period_range=(100, 10_000),
        gap=(0.0, 0.5),
    )
    defaults.update(overrides)
    gen = TaskSetGenerator(GeneratorConfig(**defaults), seed=seed)
    return list(gen.sets(count))


class TestRealisticWorkloads:
    def test_exact_tests_agree_at_high_utilization(self):
        feasible = infeasible = 0
        for ts in population(seed=101, count=60):
            reference = processor_demand_test(
                ts, bound_method=BoundMethod.BEST
            ).is_feasible
            assert dynamic_test(ts).is_feasible == reference, ts.summary()
            assert all_approx_test(ts).is_feasible == reference, ts.summary()
            assert qpa_test(ts).is_feasible == reference, ts.summary()
            feasible += reference
            infeasible += not reference
        assert feasible > 5 and infeasible > 5

    def test_sufficiency_chain_on_wide_period_sets(self):
        for ts in population(
            seed=202,
            count=30,
            period_range=(100, 1_000_000),
            period_distribution="ratio",
            utilization=(0.90, 0.96),
        ):
            exact = all_approx_test(ts).is_feasible
            devi = devi_test(ts).is_feasible
            sp2 = superposition_test(ts, 2).is_feasible
            if devi:
                assert sp2, ts.summary()
            if sp2:
                assert exact, ts.summary()

    def test_effort_relations_hold_per_set(self):
        """The paper's headline, asserted per instance (not pooled):
        the new tests never cost more intervals than the baseline."""
        for ts in population(seed=303, count=40):
            baseline = processor_demand_test(
                ts, bound_method=BoundMethod.BARUAH
            )
            if not baseline.is_feasible:
                continue
            for test in (dynamic_test, all_approx_test):
                result = test(ts)
                assert result.iterations <= baseline.iterations, ts.summary()

    def test_dynamic_level_stays_logarithmic(self):
        """Doubling bounds the level by 2^ceil(log2(needed)): the final
        level must stay far below the per-component job counts the
        baseline walks."""
        for ts in population(seed=404, count=40):
            result = dynamic_test(ts)
            assert result.max_level <= 1 << 20
            if result.revisions == 0:
                assert result.max_level == 1

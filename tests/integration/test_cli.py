"""Integration tests for the command-line interface (in-process)."""

import json

import pytest

from repro.cli import main
from repro.generation import gap_taskset
from repro.model import dump_taskset


@pytest.fixture
def taskset_file(tmp_path):
    path = tmp_path / "gap.json"
    dump_taskset(gap_taskset(), path)
    return str(path)


@pytest.fixture
def infeasible_file(tmp_path):
    from repro.model import TaskSet

    path = tmp_path / "bad.json"
    dump_taskset(TaskSet.of((1, 1, 2), (1, 1, 2)), path)
    return str(path)


class TestAnalyze:
    def test_default_test(self, taskset_file, capsys):
        assert main(["analyze", taskset_file]) == 0
        assert "all-approx" in capsys.readouterr().out

    def test_all_tests_table(self, taskset_file, capsys):
        assert main(["analyze", taskset_file, "--all"]) == 0
        out = capsys.readouterr().out
        for name in ("devi", "dynamic", "processor-demand", "qpa"):
            assert name in out
        assert "partitioned-edf" not in out  # needs --cores

    def test_all_with_cores_includes_multiprocessor_tests(
        self, taskset_file, capsys
    ):
        assert main(["analyze", taskset_file, "--all", "--cores", "2"]) == 0
        out = capsys.readouterr().out
        for name in ("partitioned-edf", "global-edf-density", "global-edf-gfb",
                      "devi", "processor-demand"):
            assert name in out

    def test_superpos_requires_level(self, taskset_file, capsys):
        assert main(["analyze", taskset_file, "--test", "superpos"]) == 2
        assert main(["analyze", taskset_file, "--test", "superpos", "--level", "2"]) == 0

    def test_infeasible_exit_code_and_witness(self, infeasible_file, capsys):
        assert main(["analyze", infeasible_file, "--test", "processor-demand"]) == 1
        assert "witness" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["analyze", "/nonexistent.json"]) == 2
        assert "error" in capsys.readouterr().err


class TestGenerate:
    def test_writes_file(self, tmp_path, capsys):
        out_file = tmp_path / "gen.json"
        code = main(
            ["generate", "--tasks", "5", "--utilization", "0.8",
             "--seed", "3", "-o", str(out_file)]
        )
        assert code == 0
        data = json.loads(out_file.read_text())
        assert len(data["tasks"]) == 5

    def test_prints_json_without_output(self, capsys):
        assert main(["generate", "--tasks", "3", "--utilization", "0.5"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["tasks"]) == 3


class TestSimulate:
    def test_feasible(self, taskset_file, capsys):
        assert main(["simulate", taskset_file]) == 0

    def test_infeasible(self, infeasible_file):
        assert main(["simulate", infeasible_file]) == 1


class TestBounds:
    def test_lists_all_bounds(self, taskset_file, capsys):
        assert main(["bounds", taskset_file]) == 0
        out = capsys.readouterr().out
        for name in ("baruah", "george", "superposition", "busy_period"):
            assert name in out


class TestExample:
    def test_lists_examples(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "burns" in out and "gresser2" in out

    def test_prints_taskset_example(self, capsys):
        assert main(["example", "gap"]) == 0
        assert "weapon-release" in capsys.readouterr().out

    def test_prints_event_stream_example(self, capsys):
        assert main(["example", "gresser1"]) == 0
        assert "demand components" in capsys.readouterr().out

    def test_exports_taskset(self, tmp_path):
        out_file = tmp_path / "burns.json"
        assert main(["example", "burns", "-o", str(out_file)]) == 0
        assert out_file.exists()

    def test_event_stream_export_rejected(self, tmp_path, capsys):
        code = main(["example", "gresser1", "-o", str(tmp_path / "x.json")])
        assert code == 2

    def test_unknown_example(self, capsys):
        assert main(["example", "nope"]) == 2


class TestPartition:
    @pytest.fixture
    def heavy_file(self, tmp_path):
        """A two-core workload: ma_shin doubled (U ~ 1.83)."""
        from repro.generation import ma_shin_taskset
        from repro.model import SporadicTask, TaskSet

        base = ma_shin_taskset()
        doubled = TaskSet(
            list(base)
            + [
                SporadicTask(
                    wcet=t.wcet, deadline=t.deadline, period=t.period,
                    name=f"{t.name}-b",
                )
                for t in base
            ],
            name="ma_shin-x2",
        )
        path = tmp_path / "heavy.json"
        dump_taskset(doubled, path)
        return str(path)

    def test_pack_verify_and_export(self, heavy_file, tmp_path, capsys):
        out_file = tmp_path / "packed.json"
        code = main(
            ["partition", heavy_file, "--cores", "4", "--heuristic", "ffd",
             "--admission", "approx-dbf", "-o", str(out_file)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "4 cores" in out
        assert "exact=feasible" in out
        assert "schedulable" in out
        # The export is a valid system-v1 document with the assignment.
        from repro.model import load_system

        system = load_system(out_file)
        assert system.cores == 4
        assert system.is_complete

    def test_deterministic_assignment(self, heavy_file, tmp_path):
        """Acceptance criterion: the documented invocation reproduces."""
        from repro.model import load_system
        from repro.partition import verify_partition

        paths = [str(tmp_path / f"run{i}.json") for i in (1, 2)]
        for path in paths:
            assert main(
                ["partition", heavy_file, "--cores", "4",
                 "--heuristic", "ffd", "--admission", "approx-dbf",
                 "-o", path]
            ) == 0
        first, second = map(load_system, paths)
        assert first == second
        # Every core passes the exact processor-demand criterion.
        verification = verify_partition(first, method="exact")
        assert verification.ok

    def test_min_cores_search(self, heavy_file, capsys):
        assert main(["partition", heavy_file, "--min-cores"]) == 0
        out = capsys.readouterr().out
        assert "minimum cores        : 2" in out
        assert "lower bound (ceil U) : 2" in out

    def test_min_cores_ignores_a_stored_platform_as_ceiling(
        self, heavy_file, tmp_path, capsys
    ):
        # A failed 1-core export must not cap the subsequent search.
        failed = tmp_path / "failed.json"
        assert main(
            ["partition", heavy_file, "--cores", "1", "-o", str(failed)]
        ) == 1
        capsys.readouterr()
        assert main(["partition", str(failed), "--min-cores"]) == 0
        assert "minimum cores        : 2" in capsys.readouterr().out

    def test_system_file_verifies_stored_assignment(
        self, heavy_file, tmp_path, capsys
    ):
        # An exported system re-verifies as stored — even when the
        # current flags would pack differently — unless --repack asks.
        packed = tmp_path / "packed.json"
        main(["partition", heavy_file, "--cores", "3", "--heuristic", "bfd",
              "-o", str(packed)])
        capsys.readouterr()
        assert main(
            ["partition", str(packed), "--heuristic", "wf",
             "--admission", "utilization"]
        ) == 0
        out = capsys.readouterr().out
        assert "using the stored assignment" in out
        assert "3 cores" in out
        assert "packing" not in out  # nothing was re-packed

    def test_repack_overrides_stored_assignment(
        self, heavy_file, tmp_path, capsys
    ):
        packed = tmp_path / "packed.json"
        main(["partition", heavy_file, "--cores", "3", "-o", str(packed)])
        capsys.readouterr()
        assert main(["partition", str(packed), "--repack"]) == 0
        out = capsys.readouterr().out
        assert "using the stored assignment" not in out
        assert "packing" in out

    def test_cores_mismatch_announces_the_discarded_assignment(
        self, heavy_file, tmp_path, capsys
    ):
        packed = tmp_path / "packed.json"
        main(["partition", heavy_file, "--cores", "3", "-o", str(packed)])
        capsys.readouterr()
        assert main(["partition", str(packed), "--cores", "4"]) == 0
        out = capsys.readouterr().out
        assert "stored assignment ignored" in out
        assert "4 cores" in out

    def test_cores_required_without_system_platform(self, heavy_file, capsys):
        assert main(["partition", heavy_file]) == 2
        assert "--cores" in capsys.readouterr().err

    def test_packing_failure_exit_code(self, heavy_file, capsys):
        assert main(["partition", heavy_file, "--cores", "1"]) == 1
        assert "did not fit" in capsys.readouterr().out

    def test_unknown_admission_lists_registry_names(self, heavy_file, capsys):
        assert main(
            ["partition", heavy_file, "--cores", "2", "--admission", "nope"]
        ) == 2
        err = capsys.readouterr().err
        assert "approx-dbf" in err and "processor-demand" in err

    def test_epsilon_accepts_fraction_strings(self, heavy_file, capsys):
        assert main(
            ["partition", heavy_file, "--cores", "2", "--epsilon", "1/4"]
        ) == 0
        assert "eps=1/4" in capsys.readouterr().out

    def test_verify_none_skips_verification(self, heavy_file, capsys):
        assert main(
            ["partition", heavy_file, "--cores", "2", "--verify", "none"]
        ) == 0
        out = capsys.readouterr().out
        assert "verification skipped" in out
        assert "exact=" not in out


class TestCacheStats:
    def test_analyze_cache_stats(self, taskset_file, capsys):
        assert main(["analyze", taskset_file, "--cache-stats"]) == 0
        assert "context cache:" in capsys.readouterr().out

    def test_partition_cache_stats(self, taskset_file, capsys):
        assert main(
            ["partition", taskset_file, "--cores", "2", "--cache-stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "context cache:" in out and "hits=" in out

    def test_no_stats_without_flag(self, taskset_file, capsys):
        assert main(["analyze", taskset_file]) == 0
        assert "context cache:" not in capsys.readouterr().out

    def test_parallel_fanout_stats_carry_a_worker_note(
        self, taskset_file, capsys
    ):
        assert main(
            ["analyze", taskset_file, "--all", "--jobs", "2", "--cache-stats"]
        ) == 0
        assert "own caches" in capsys.readouterr().out

    def test_sequential_fanout_stats_have_no_note(self, taskset_file, capsys):
        assert main(
            ["analyze", taskset_file, "--all", "--jobs", "1", "--cache-stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "context cache:" in out
        assert "own caches" not in out


class TestExperiment:
    def test_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Burns" in out and "FAILED" in out

    def test_table1_csv_export(self, tmp_path, capsys):
        csv_file = tmp_path / "t1.csv"
        assert main(["experiment", "table1", "--csv", str(csv_file)]) == 0
        content = csv_file.read_text()
        assert content.startswith("system,devi,dynamic")
        assert "Burns" in content and "FAILED" in content


class TestLoad:
    def test_reports_load_and_scaling(self, taskset_file, capsys):
        assert main(["load", taskset_file]) == 0
        out = capsys.readouterr().out
        assert "system load" in out
        assert "critical scaling" in out
        assert "feasible" in out

    def test_infeasible_exit_code(self, infeasible_file, capsys):
        assert main(["load", infeasible_file]) == 1

    def test_hyperperiod_scale_refusal_is_graceful(self, tmp_path, capsys):
        from repro.model import TaskSet, dump_taskset

        nasty = TaskSet.of(
            (2505, 33808, 37048),
            (775, 26408, 33098),
            (13633, 29935, 30256),
            (2423, 17755, 19289),
            (22027, 72177, 97530),
            (100, 11288, 14434),
        )
        path = tmp_path / "nasty.json"
        dump_taskset(nasty, path)
        assert main(["load", str(path)]) == 2
        assert "exact_decision_limit" in capsys.readouterr().err


def test_version(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0


class TestOnlineCommands:
    @pytest.fixture
    def trace_file(self, tmp_path):
        path = tmp_path / "trace.json"
        assert (
            main(
                [
                    "trace",
                    "--scenario",
                    "churn",
                    "--events",
                    "30",
                    "--seed",
                    "11",
                    "-o",
                    str(path),
                ]
            )
            == 0
        )
        return str(path)

    def test_trace_writes_valid_trace_v1(self, trace_file):
        from repro.model import load_trace

        trace = load_trace(trace_file)
        assert len(trace) == 30

    def test_trace_prints_json_without_output(self, capsys):
        assert main(["trace", "--scenario", "ramp", "--events", "5"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["format"] == "repro/trace-v1"
        assert len(document["events"]) == 5

    def test_trace_utilization_only_for_churn(self, capsys):
        code = main(
            ["trace", "--scenario", "ramp", "--events", "5", "--utilization", "0.5"]
        )
        assert code == 2
        assert "churn" in capsys.readouterr().err

    def test_replay_summary(self, trace_file, capsys):
        assert main(["replay", trace_file]) == 0
        out = capsys.readouterr().out
        assert "replayed 30 events" in out
        assert "admitted" in out

    def test_replay_with_oracle_and_base(self, trace_file, taskset_file, capsys):
        assert (
            main(
                [
                    "replay",
                    trace_file,
                    "--base",
                    taskset_file,
                    "--oracle",
                    "--per-event",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "(oracle: qpa)" in out
        assert "approx-filter" in out

    def test_replay_onto_cores(self, trace_file, capsys):
        assert main(["replay", trace_file, "--cores", "2", "--heuristic", "wf"]) == 0
        out = capsys.readouterr().out
        assert "2 cores (wf)" in out
        assert "core 1:" in out

    def test_replay_epsilon_none(self, trace_file, capsys):
        assert main(["replay", trace_file, "--epsilon", "none"]) == 0
        assert "stage exact" in capsys.readouterr().out

    def test_admit_accepts_and_rejects(self, taskset_file, capsys):
        assert (
            main(["admit", taskset_file, "--task", "1", "20", "25"]) == 0
        )
        assert "admitted" in capsys.readouterr().out
        assert (
            main(["admit", taskset_file, "--task", "500", "20", "25"]) == 1
        )
        assert "REJECTED" in capsys.readouterr().out

    def test_admit_from_file(self, taskset_file, tmp_path, capsys):
        from repro.model import TaskSet, dump_taskset

        candidates = tmp_path / "candidates.json"
        dump_taskset(TaskSet.of((1, 30, 40), (1, 40, 50)), candidates)
        assert main(["admit", taskset_file, "--file", str(candidates)]) == 0
        out = capsys.readouterr().out
        assert out.count("admitted") == 2

    def test_admit_needs_candidates(self, taskset_file, capsys):
        assert main(["admit", taskset_file]) == 2
        assert "--task" in capsys.readouterr().err

    def test_replay_cores_rejects_oracle_and_base(
        self, trace_file, taskset_file, capsys
    ):
        assert main(["replay", trace_file, "--cores", "2", "--oracle"]) == 2
        assert "--oracle" in capsys.readouterr().err
        assert (
            main(["replay", trace_file, "--cores", "2", "--base", taskset_file])
            == 2
        )
        assert "--base" in capsys.readouterr().err

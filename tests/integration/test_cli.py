"""Integration tests for the command-line interface (in-process)."""

import json

import pytest

from repro.cli import main
from repro.generation import gap_taskset
from repro.model import dump_taskset


@pytest.fixture
def taskset_file(tmp_path):
    path = tmp_path / "gap.json"
    dump_taskset(gap_taskset(), path)
    return str(path)


@pytest.fixture
def infeasible_file(tmp_path):
    from repro.model import TaskSet

    path = tmp_path / "bad.json"
    dump_taskset(TaskSet.of((1, 1, 2), (1, 1, 2)), path)
    return str(path)


class TestAnalyze:
    def test_default_test(self, taskset_file, capsys):
        assert main(["analyze", taskset_file]) == 0
        assert "all-approx" in capsys.readouterr().out

    def test_all_tests_table(self, taskset_file, capsys):
        assert main(["analyze", taskset_file, "--all"]) == 0
        out = capsys.readouterr().out
        for name in ("devi", "dynamic", "processor-demand", "qpa"):
            assert name in out

    def test_superpos_requires_level(self, taskset_file, capsys):
        assert main(["analyze", taskset_file, "--test", "superpos"]) == 2
        assert main(["analyze", taskset_file, "--test", "superpos", "--level", "2"]) == 0

    def test_infeasible_exit_code_and_witness(self, infeasible_file, capsys):
        assert main(["analyze", infeasible_file, "--test", "processor-demand"]) == 1
        assert "witness" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["analyze", "/nonexistent.json"]) == 2
        assert "error" in capsys.readouterr().err


class TestGenerate:
    def test_writes_file(self, tmp_path, capsys):
        out_file = tmp_path / "gen.json"
        code = main(
            ["generate", "--tasks", "5", "--utilization", "0.8",
             "--seed", "3", "-o", str(out_file)]
        )
        assert code == 0
        data = json.loads(out_file.read_text())
        assert len(data["tasks"]) == 5

    def test_prints_json_without_output(self, capsys):
        assert main(["generate", "--tasks", "3", "--utilization", "0.5"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["tasks"]) == 3


class TestSimulate:
    def test_feasible(self, taskset_file, capsys):
        assert main(["simulate", taskset_file]) == 0

    def test_infeasible(self, infeasible_file):
        assert main(["simulate", infeasible_file]) == 1


class TestBounds:
    def test_lists_all_bounds(self, taskset_file, capsys):
        assert main(["bounds", taskset_file]) == 0
        out = capsys.readouterr().out
        for name in ("baruah", "george", "superposition", "busy_period"):
            assert name in out


class TestExample:
    def test_lists_examples(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "burns" in out and "gresser2" in out

    def test_prints_taskset_example(self, capsys):
        assert main(["example", "gap"]) == 0
        assert "weapon-release" in capsys.readouterr().out

    def test_prints_event_stream_example(self, capsys):
        assert main(["example", "gresser1"]) == 0
        assert "demand components" in capsys.readouterr().out

    def test_exports_taskset(self, tmp_path):
        out_file = tmp_path / "burns.json"
        assert main(["example", "burns", "-o", str(out_file)]) == 0
        assert out_file.exists()

    def test_event_stream_export_rejected(self, tmp_path, capsys):
        code = main(["example", "gresser1", "-o", str(tmp_path / "x.json")])
        assert code == 2

    def test_unknown_example(self, capsys):
        assert main(["example", "nope"]) == 2


class TestExperiment:
    def test_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Burns" in out and "FAILED" in out

    def test_table1_csv_export(self, tmp_path, capsys):
        csv_file = tmp_path / "t1.csv"
        assert main(["experiment", "table1", "--csv", str(csv_file)]) == 0
        content = csv_file.read_text()
        assert content.startswith("system,devi,dynamic")
        assert "Burns" in content and "FAILED" in content


class TestLoad:
    def test_reports_load_and_scaling(self, taskset_file, capsys):
        assert main(["load", taskset_file]) == 0
        out = capsys.readouterr().out
        assert "system load" in out
        assert "critical scaling" in out
        assert "feasible" in out

    def test_infeasible_exit_code(self, infeasible_file, capsys):
        assert main(["load", infeasible_file]) == 1

    def test_hyperperiod_scale_refusal_is_graceful(self, tmp_path, capsys):
        from repro.model import TaskSet, dump_taskset

        nasty = TaskSet.of(
            (2505, 33808, 37048),
            (775, 26408, 33098),
            (13633, 29935, 30256),
            (2423, 17755, 19289),
            (22027, 72177, 97530),
            (100, 11288, 14434),
        )
        path = tmp_path / "nasty.json"
        dump_taskset(nasty, path)
        assert main(["load", str(path)]) == 2
        assert "exact_decision_limit" in capsys.readouterr().err


def test_version(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0

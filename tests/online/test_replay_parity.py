"""Online/from-scratch parity: the correctness bar of the subsystem.

Randomized churn traces — hundreds of events, mixed int/float/Fraction
task parameters — replayed through a controller, with every verdict
checked against a fresh engine ``analyze()`` of the snapshot:

* an admitted arrival's system must be FEASIBLE from scratch,
* a rejected arrival's would-be system must be INFEASIBLE from scratch,
* the system after any departure must be FEASIBLE from scratch,

under both exact engine tests (``qpa`` and ``processor-demand``), which
agree by their own parity suite — so one oracle run per test suffices.
"""

import pytest

from repro.engine import analyze
from repro.generation import churn_trace, generate_trace, poisson_trace
from repro.model.components import as_components
from repro.online import (
    ARRIVE,
    AdmissionController,
    ParityError,
    ReplayReport,
    Stage,
    replay,
)


def _assert_full_parity(trace, epsilon="1/10", oracle_test="qpa"):
    """Manual replay asserting per-event verdict parity (both directions)."""
    from fractions import Fraction

    controller = AdmissionController(
        epsilon=None if epsilon is None else Fraction(epsilon)
    )
    checked_rejections = 0
    for event in trace:
        if event.kind == ARRIVE:
            before = list(controller.snapshot())
            decision = controller.admit(event.task, name=event.name)
            if decision.admitted:
                fresh = analyze(list(controller.snapshot()), test=oracle_test)
                assert fresh.is_feasible, (event.name, decision.stage)
            else:
                would_be = before + list(as_components([event.task]))
                fresh = analyze(would_be, test=oracle_test)
                assert fresh.is_infeasible, (event.name, decision.stage)
                checked_rejections += 1
        else:
            controller.remove(event.name, strict=False)
            fresh = analyze(list(controller.snapshot()), test=oracle_test)
            assert fresh.is_feasible, event.name
    return controller, checked_rejections


class TestChurnParity:
    def test_200_event_mixed_type_churn_parity_qpa(self):
        trace = churn_trace(
            220,
            seed=2005,
            mixed_types=True,
            target_utilization=0.92,
            per_task_utilization=(0.02, 0.2),
            period_range=(10, 2_000),
        )
        assert len(trace) >= 200
        controller, rejections = _assert_full_parity(trace, oracle_test="qpa")
        stats = controller.stats()
        # The trace must actually contest admission, not rubber-stamp it.
        assert stats["rejected"] > 0
        assert stats["admitted"] > 0
        assert stats["departures"] > 0

    def test_200_event_churn_parity_processor_demand(self):
        trace = churn_trace(
            200,
            seed=77,
            mixed_types=True,
            target_utilization=0.95,
            per_task_utilization=(0.05, 0.3),
            period_range=(5, 500),
        )
        _assert_full_parity(trace, oracle_test="processor-demand")

    def test_parity_with_filter_disabled(self):
        trace = churn_trace(
            120,
            seed=31,
            mixed_types=True,
            target_utilization=0.9,
            per_task_utilization=(0.05, 0.25),
            period_range=(5, 400),
        )
        controller, _ = _assert_full_parity(trace, epsilon=None)
        stats = controller.stats()
        assert stats[Stage.FILTER] == 0  # every arrival went exact

    def test_oracle_replay_mode_agrees(self):
        trace = generate_trace(
            "churn", 150, seed=9, mixed_types=True,
            target_utilization=0.93,
            per_task_utilization=(0.03, 0.25),
            period_range=(8, 800),
        )
        report = replay(trace, oracle=True)
        assert isinstance(report, ReplayReport)
        assert report.events == len(trace)
        assert report.oracle == "qpa"

    def test_poisson_trace_oracle(self):
        trace = poisson_trace(
            120, seed=4, mixed_types=True, per_task_utilization=(0.02, 0.12)
        )
        report = replay(trace, oracle=True, oracle_test="processor-demand")
        assert report.events == len(trace)

    def test_oracle_catches_a_wrong_verdict(self, monkeypatch):
        """The oracle is live: force a bogus accept and watch it fire."""
        from repro.online import controller as controller_module

        from repro.model import SporadicTask
        from repro.online import ArrivalEvent, Trace

        # (1,1,2) twice: U == 1 passes the gate, but dbf(1) = 2 — any
        # honest stage rejects the second arrival.
        task = SporadicTask(wcet=1, deadline=1, period=2)
        trace = Trace(
            [
                ArrivalEvent.arrive("a", task, time=0),
                ArrivalEvent.arrive("b", task, time=1),
            ]
        )
        # Lobotomize the filter and the exact scan: every arrival that
        # passes the utilization gate is admitted, feasible or not.
        monkeypatch.setattr(
            controller_module,
            "_superpos_scan",
            lambda kernel, level, lo_s, hi_s: (True, 0),
        )
        monkeypatch.setattr(
            controller_module,
            "_qpa_scan",
            lambda kernel, bound, lo_s: (True, 0, None),
        )
        with pytest.raises(ParityError):
            replay(trace, oracle=True)


class TestReplayReport:
    def test_report_aggregates(self):
        trace = churn_trace(80, seed=13, target_utilization=0.9)
        report = replay(trace)
        assert report.events == 80
        assert report.admitted + report.rejected == trace.arrivals
        assert report.mean_latency_seconds > 0
        assert report.max_latency_seconds >= report.mean_latency_seconds
        assert sum(report.stage_counts().values()) == 80
        summary = report.summary()
        assert "replayed 80 events" in summary
        assert "admitted" in summary

    def test_replay_continues_existing_controller(self, simple_taskset):
        controller = AdmissionController(simple_taskset)
        trace = churn_trace(30, seed=3, target_utilization=0.7)
        replay(trace, controller=controller)
        assert "initial" in controller

"""Online multiprocessor placement: routing, stats, offline agreement."""

from fractions import Fraction

import pytest

from repro.model import SporadicTask, TaskSet
from repro.model.serialization import loads_system, dumps_system
from repro.model.validation import ModelError
from repro.online import OnlinePlacer
from repro.partition import verify_partition
from repro.partition.platform import Platform


def _task(c, d, t, name=""):
    return SporadicTask(wcet=c, deadline=d, period=t, name=name)


class TestRouting:
    def test_first_fit_sticks_to_core_zero(self):
        placer = OnlinePlacer(3, heuristic="ff")
        for index in range(4):
            decision = placer.admit(_task(1, 8, 10), name=f"t{index}")
            assert decision.core == 0 and not decision.diverted

    def test_worst_fit_balances(self):
        placer = OnlinePlacer(2, heuristic="wf")
        cores = [
            placer.admit(_task(1, 8, 10), name=f"t{i}").core for i in range(4)
        ]
        assert cores == [0, 1, 0, 1]

    def test_best_fit_fills_fullest_admitting_core(self):
        placer = OnlinePlacer(2, heuristic="bf")
        placer.admit(_task(4, 10, 10), name="big")       # core 0
        placer.admit(_task(1, 10, 10), name="small")     # bf: back onto core 0
        assert placer.core_of("big") == placer.core_of("small") == 0

    def test_diversion_when_preferred_core_is_full(self):
        placer = OnlinePlacer(2, heuristic="ff")
        placer.admit(_task(9, 10, 10), name="hog")
        decision = placer.admit(_task(5, 10, 10), name="spill")
        assert decision.core == 1 and decision.diverted
        assert placer.diversions == 1

    def test_rejection_when_no_core_admits(self):
        placer = OnlinePlacer(2, heuristic="ff")
        placer.admit(_task(9, 10, 10), name="a")
        placer.admit(_task(9, 10, 10), name="b")
        decision = placer.admit(_task(5, 10, 10), name="c")
        assert not decision.placed and decision.core is None
        assert decision.probed == (0, 1)
        assert placer.rejections == 1
        assert "c" not in placer

    def test_departure_frees_capacity(self):
        placer = OnlinePlacer(1)
        placer.admit(_task(9, 10, 10), name="a")
        assert not placer.admit(_task(5, 10, 10), name="b").placed
        placer.remove("a")
        assert placer.admit(_task(5, 10, 10), name="b").placed
        with pytest.raises(KeyError):
            placer.remove("a")

    def test_rejects_non_task_sources(self):
        placer = OnlinePlacer(1)
        with pytest.raises(ModelError, match="whole tasks"):
            placer.admit(TaskSet.of((1, 2, 3)))  # type: ignore[arg-type]

    def test_duplicate_name_rejected(self):
        placer = OnlinePlacer(2)
        placer.admit(_task(1, 5, 5), name="a")
        with pytest.raises(ModelError, match="already placed"):
            placer.admit(_task(1, 5, 5), name="a")

    def test_unknown_heuristic_rejected(self):
        with pytest.raises(ValueError, match="unknown placement heuristic"):
            OnlinePlacer(2, heuristic="zz")


class TestSystemExport:
    def test_system_round_trips_and_verifies(self):
        placer = OnlinePlacer(Platform(cores=2, name="duo"), heuristic="wf")
        tasks = [
            _task(2, 8, 10, name="alpha"),
            _task(3, 9, 12, name="beta"),
            _task(1, 4, 6, name="gamma"),
        ]
        for task in tasks:
            assert placer.admit(task).placed
        system = placer.system()
        assert system.is_complete
        restored = loads_system(dumps_system(system))
        assert restored == system
        verification = verify_partition(system, method="exact")
        assert verification.ok

    def test_utilizations_match_controllers(self):
        placer = OnlinePlacer(2, heuristic="wf")
        placer.admit(_task(1, 4, 4), name="a")
        placer.admit(_task(1, 8, 8), name="b")
        assert placer.utilizations() == (Fraction(1, 4), Fraction(1, 8))

    def test_stats_document(self):
        placer = OnlinePlacer(2)
        placer.admit(_task(1, 4, 4), name="a")
        stats = placer.stats()
        assert stats["cores"] == 2 and stats["placed"] == 1
        assert len(stats["per_core"]) == 2
        assert stats["per_core"][0]["admitted"] == 1


class TestNameGeneration:
    def test_auto_name_skips_taken_handles(self):
        placer = OnlinePlacer(2)
        placer.admit(_task(1, 40, 50), name="task1")
        decision = placer.admit(_task(1, 40, 50))  # unnamed task
        assert decision.placed and decision.name == "task2"

    def test_probe_order_matches_partition_layer(self):
        from repro.partition.packing import _probe_order

        placer = OnlinePlacer(3, heuristic="bf")
        placer.admit(_task(1, 4, 4), name="a")
        placer.admit(_task(1, 8, 8), name="b")
        loads = list(placer.utilizations())
        assert placer.probe_order() == _probe_order("bf", loads, 3)

"""Admission controller unit tests: pipeline stages, rollback, invariants."""

from fractions import Fraction

import pytest

from repro.engine import analyze
from repro.generation import generate_taskset
from repro.model import SporadicTask, TaskSet
from repro.model.components import DemandComponent, as_components
from repro.model.validation import ModelError
from repro.online import AdmissionController, Stage
from repro.result import Verdict


def _task(c, d, t, name=""):
    return SporadicTask(wcet=c, deadline=d, period=t, name=name)


class TestLifecycle:
    def test_admit_then_remove_restores_empty(self):
        controller = AdmissionController()
        decision = controller.admit(_task(1, 4, 5), name="a")
        assert decision.admitted and decision.verdict is Verdict.FEASIBLE
        assert len(controller) == 1 and "a" in controller
        departure = controller.remove("a")
        assert departure.admitted and departure.stage == Stage.DEPARTURE
        assert len(controller) == 0 and controller.utilization == 0
        assert controller.snapshot() == ()

    def test_initial_system_is_one_entry(self, simple_taskset):
        controller = AdmissionController(simple_taskset)
        assert len(controller) == 1 and "initial" in controller
        assert controller.utilization == simple_taskset.utilization
        assert len(controller.snapshot()) == len(simple_taskset)

    def test_infeasible_initial_system_rejected(self, infeasible_taskset):
        with pytest.raises(ModelError, match="initial system is infeasible"):
            AdmissionController(infeasible_taskset)

    def test_overloaded_initial_system_rejected(self):
        with pytest.raises(ModelError, match="U > 1"):
            AdmissionController(TaskSet.of((3, 2, 2), (3, 2, 2)))

    def test_duplicate_name_rejected(self):
        controller = AdmissionController()
        controller.admit(_task(1, 8, 10), name="a")
        with pytest.raises(ModelError, match="already admitted"):
            controller.admit(_task(1, 8, 10), name="a")

    def test_auto_names_are_unique(self):
        controller = AdmissionController()
        first = controller.admit(_task(1, 40, 50))
        second = controller.admit(_task(1, 40, 50))
        assert first.name != second.name

    def test_remove_unknown_strict_raises(self):
        controller = AdmissionController()
        with pytest.raises(KeyError):
            controller.remove("ghost")
        decision = controller.remove("ghost", strict=False)
        assert not decision.admitted and decision.stage == Stage.ABSENT

    def test_event_stream_and_component_sources(self):
        controller = AdmissionController()
        component = DemandComponent(wcet=1, first_deadline=3, period=7)
        assert controller.admit(component, name="comp").admitted
        one_shot = DemandComponent(wcet=1, first_deadline=9)
        assert controller.admit(one_shot, name="shot").admitted
        assert len(controller.snapshot()) == 2
        controller.remove("comp")
        assert [c.period for c in controller.snapshot()] == [None]


class TestPipelineStages:
    def test_utilization_gate_rejects_overload(self):
        controller = AdmissionController(TaskSet.of((4, 10, 10)))
        decision = controller.admit(_task(7, 10, 10), name="x")
        assert not decision.admitted
        assert decision.stage == Stage.GATE
        assert decision.verdict is Verdict.INFEASIBLE
        # Rolled back: nothing changed.
        assert len(controller) == 1
        assert controller.utilization == Fraction(2, 5)

    def test_filter_accepts_comfortable_arrival(self):
        controller = AdmissionController(TaskSet.of((1, 10, 10)))
        decision = controller.admit(_task(1, 10, 10), name="x")
        assert decision.admitted and decision.stage == Stage.FILTER
        assert controller.approx_clean

    def test_exact_stage_decides_when_filter_is_inconclusive(self):
        # (1,1,3)+(4,6,8) is exactly feasible but SuperPos(2) — epsilon
        # 0.9 — overestimates past capacity, so the filter stays
        # inconclusive and the windowed exact stage must admit.
        controller = AdmissionController(
            TaskSet.of((1, 1, 3)), epsilon=Fraction(9, 10)
        )
        decision = controller.admit(_task(4, 6, 8), name="x")
        assert decision.admitted and decision.stage == Stage.EXACT
        assert not controller.approx_clean

    def test_exact_stage_rejects_with_witness(self):
        controller = AdmissionController(TaskSet.of((1, 1, 2)))
        decision = controller.admit(_task(1, 1, 2), name="x")
        assert not decision.admitted and decision.stage == Stage.EXACT
        assert decision.verdict is Verdict.INFEASIBLE
        assert decision.witness is not None
        assert decision.witness.demand > decision.witness.interval
        # The witness is checkable against the would-be system.
        would_be = list(controller.snapshot()) + list(
            as_components([_task(1, 1, 2)])
        )
        fresh = analyze(would_be, test="qpa")
        assert fresh.is_infeasible
        # Rollback left the admitted system intact and feasible.
        assert analyze(list(controller.snapshot()), test="qpa").is_feasible

    def test_filter_disabled_goes_straight_to_exact(self):
        controller = AdmissionController(epsilon=None)
        decision = controller.admit(_task(1, 10, 10), name="x")
        assert decision.admitted and decision.stage == Stage.EXACT

    def test_zero_demand_entity_is_trivial(self):
        controller = AdmissionController()
        decision = controller.admit(_task(0, 5, 5), name="idle")
        assert decision.admitted and decision.stage == Stage.TRIVIAL
        assert controller.snapshot() == ()
        controller.remove("idle")  # the handle still exists

    def test_approx_clean_reestablished_by_full_filter_pass(self):
        controller = AdmissionController(
            TaskSet.of((1, 1, 3)), epsilon=Fraction(9, 10)
        )
        controller.admit(_task(4, 6, 8), name="tight")
        assert not controller.approx_clean
        controller.remove("tight")
        # Dirty flag survives departures...
        assert not controller.approx_clean
        # ...until the next arrival's full filter pass succeeds.
        decision = controller.admit(_task(1, 100, 100), name="easy")
        assert decision.admitted and decision.stage == Stage.FILTER
        assert controller.approx_clean


class TestBookkeeping:
    def test_incremental_utilization_is_exact(self):
        controller = AdmissionController()
        controller.admit(_task(1, 2, 3), name="a")
        controller.admit(_task(Fraction(1, 7), 2, Fraction(22, 7)), name="b")
        expected = Fraction(1, 3) + Fraction(1, 7) / Fraction(22, 7)
        assert controller.utilization == expected
        controller.remove("b")
        assert controller.utilization == Fraction(1, 3)

    def test_bounds_match_engine_context(self):
        from repro.analysis.bounds import BoundMethod
        from repro.engine.context import AnalysisContext

        controller = AdmissionController()
        tasks = generate_taskset(n=12, utilization=0.8, seed=17)
        for index, task in enumerate(tasks):
            controller.admit(task, name=f"t{index}")
        ctx = AnalysisContext.of(list(controller.snapshot()))
        assert controller._bound_baruah() == ctx.bound(BoundMethod.BARUAH)
        assert controller._bound_george() == ctx.bound(BoundMethod.GEORGE)
        assert controller._bound_superposition() == ctx.bound(
            BoundMethod.SUPERPOSITION
        )
        assert controller._best_bound() == ctx.bound(BoundMethod.BEST)
        # Bounds stay exact after removals (max trackers recompute).
        controller.remove("t3")
        controller.remove("t7")
        ctx = AnalysisContext.of(list(controller.snapshot()))
        assert controller._best_bound() == ctx.bound(BoundMethod.BEST)

    def test_stats_counters(self):
        controller = AdmissionController()
        controller.admit(_task(1, 10, 10), name="a")
        controller.admit(_task(20, 10, 10), name="fat")  # gate reject
        controller.remove("a")
        stats = controller.stats()
        assert stats["events"] == 3
        assert stats["arrivals"] == 2 and stats["departures"] == 1
        assert stats["admitted"] == 1 and stats["rejected"] == 1
        assert stats[Stage.GATE] == 1
        assert stats["mean_latency_seconds"] > 0

    def test_decision_latency_recorded(self):
        controller = AdmissionController()
        decision = controller.admit(_task(1, 5, 5))
        assert decision.latency_seconds >= 0
        assert decision.tasks == 1 and decision.utilization == Fraction(1, 5)


class TestExactnessAtBoundaries:
    def test_utilization_exactly_one_admits_when_feasible(self):
        # Implicit deadlines at U == 1: feasible, and the bound falls
        # back to the busy period exactly like the engine's.
        controller = AdmissionController(TaskSet.of((1, 2, 2)))
        decision = controller.admit(_task(1, 2, 2), name="x")
        assert decision.admitted
        assert controller.utilization == 1
        assert analyze(list(controller.snapshot()), test="qpa").is_feasible

    def test_one_shot_components_in_bounds(self):
        controller = AdmissionController()
        controller.admit(DemandComponent(wcet=2, first_deadline=5), name="burst")
        decision = controller.admit(_task(1, 4, 4), name="periodic")
        assert decision.admitted
        fresh = analyze(list(controller.snapshot()), test="processor-demand")
        assert fresh.is_feasible


class TestRollbackHygiene:
    def test_rejected_arrival_does_not_grow_the_grid(self):
        controller = AdmissionController(TaskSet.of((4, 5, 5)))
        assert controller._kernel.scale == 1
        # A candidate with a denominator the grid does not know: the
        # tentative merge rescales, the rejection must restore the grid.
        decision = controller.admit(
            _task(Fraction(7, 3), Fraction(7, 3), Fraction(7, 3)), name="x"
        )
        assert not decision.admitted
        assert controller._kernel.scale == 1
        assert controller._kernel.n == 1

    def test_rejected_arrival_does_not_degrade_to_exact_path(self):
        controller = AdmissionController(TaskSet.of((9, 10, 10)))
        assert controller._kernel.scale == 1
        huge_prime = (1 << 127) - 1
        fat = DemandComponent(
            wcet=Fraction(huge_prime - 1, huge_prime),
            first_deadline=Fraction(1, huge_prime),
            period=1,
        )
        # Forcing the LCM past SCALE_CAP degrades the tentative kernel;
        # the rejection recompiles back onto the integer grid.
        decision = controller.admit(fat, name="nasty")
        assert not decision.admitted
        assert controller._kernel.scale == 1

    def test_auto_name_skips_user_supplied_handles(self):
        controller = AdmissionController()
        controller.admit(_task(1, 40, 50), name="task1")
        decision = controller.admit(_task(1, 40, 50))  # auto-named
        assert decision.admitted and decision.name == "task2"
        another = controller.admit(_task(1, 40, 50))
        assert another.admitted and another.name == "task3"

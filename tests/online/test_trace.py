"""Trace model validation, serialization round-trips, generators."""

from fractions import Fraction

import pytest

from repro.generation import (
    TRACE_SCENARIOS,
    bursty_trace,
    churn_trace,
    generate_trace,
    poisson_trace,
    ramp_trace,
)
from repro.model import SporadicTask
from repro.model.serialization import (
    dumps_trace,
    event_from_dict,
    event_to_dict,
    loads_trace,
    trace_from_dict,
)
from repro.model.validation import ModelError
from repro.online import ARRIVE, DEPART, ArrivalEvent, Trace


def _task(**overrides):
    params = dict(wcet=1, deadline=4, period=5)
    params.update(overrides)
    return SporadicTask(**params)


class TestArrivalEvent:
    def test_arrival_carries_task(self):
        event = ArrivalEvent.arrive("a", _task(), time=3)
        assert event.kind == ARRIVE and event.task is not None

    def test_arrival_without_task_rejected(self):
        with pytest.raises(ModelError, match="carries no task"):
            ArrivalEvent(kind=ARRIVE, name="a")

    def test_departure_with_task_rejected(self):
        with pytest.raises(ModelError, match="must not carry"):
            ArrivalEvent(kind=DEPART, name="a", task=_task())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ModelError, match="kind"):
            ArrivalEvent(kind="pause", name="a")

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError, match="name"):
            ArrivalEvent.depart("")


class TestTrace:
    def test_validates_departure_of_unknown_task(self):
        with pytest.raises(ModelError, match="unknown task"):
            Trace([ArrivalEvent.depart("ghost")])

    def test_validates_double_arrival(self):
        events = [
            ArrivalEvent.arrive("a", _task()),
            ArrivalEvent.arrive("a", _task()),
        ]
        with pytest.raises(ModelError, match="already present"):
            Trace(events)

    def test_rearrival_after_departure_is_fine(self):
        Trace(
            [
                ArrivalEvent.arrive("a", _task(), time=0),
                ArrivalEvent.depart("a", time=1),
                ArrivalEvent.arrive("a", _task(), time=2),
            ]
        )

    def test_validates_time_ordering(self):
        events = [
            ArrivalEvent.arrive("a", _task(), time=5),
            ArrivalEvent.arrive("b", _task(), time=4),
        ]
        with pytest.raises(ModelError, match="non-decreasing"):
            Trace(events)

    def test_counts(self):
        trace = Trace(
            [
                ArrivalEvent.arrive("a", _task(), time=0),
                ArrivalEvent.arrive("b", _task(), time=1),
                ArrivalEvent.depart("a", time=2),
            ]
        )
        assert len(trace) == 3
        assert trace.arrivals == 2 and trace.departures == 1


class TestSerialization:
    def test_round_trip_mixed_parameter_types(self):
        trace = Trace(
            [
                ArrivalEvent.arrive("int", _task(), time=0),
                ArrivalEvent.arrive(
                    "frac",
                    _task(
                        wcet=Fraction(1, 3),
                        deadline=Fraction(7, 2),
                        period=Fraction(9, 2),
                    ),
                    time=Fraction(1, 2),
                ),
                ArrivalEvent.arrive(
                    "float", _task(wcet=0.25, deadline=3.5, period=5.5), time=1
                ),
                ArrivalEvent.depart("int", time=2),
            ],
            name="mixed",
        )
        restored = loads_trace(dumps_trace(trace))
        assert restored.name == "mixed"
        assert list(restored) == list(trace)

    def test_event_round_trip_preserves_task_name(self):
        event = ArrivalEvent.arrive("x", _task(name="tau9"), time=7)
        assert event_from_dict(event_to_dict(event)) == event

    def test_malformed_documents_rejected(self):
        with pytest.raises(ModelError, match="'events'"):
            trace_from_dict({"format": "repro/trace-v1"})
        with pytest.raises(ModelError, match="unsupported trace format"):
            trace_from_dict({"format": "repro/trace-v2", "events": []})
        with pytest.raises(ModelError, match="missing"):
            event_from_dict({"kind": "arrive"})

    def test_generated_traces_round_trip(self):
        for scenario in TRACE_SCENARIOS:
            trace = generate_trace(scenario, 25, seed=3, mixed_types=True)
            assert list(loads_trace(dumps_trace(trace))) == list(trace)


class TestGenerators:
    def test_exact_event_counts(self):
        for scenario, generator in (
            ("poisson", poisson_trace),
            ("bursty", bursty_trace),
            ("ramp", ramp_trace),
            ("churn", churn_trace),
        ):
            trace = generator(50, seed=1)
            assert len(trace) == 50, scenario

    def test_seed_reproducibility(self):
        a = churn_trace(80, seed=42, mixed_types=True)
        b = churn_trace(80, seed=42, mixed_types=True)
        assert list(a) == list(b)
        c = churn_trace(80, seed=43, mixed_types=True)
        assert list(a) != list(c)

    def test_ramp_is_pure_arrivals(self):
        trace = ramp_trace(30, seed=2)
        assert trace.departures == 0

    def test_churn_has_both_kinds(self):
        trace = churn_trace(120, seed=5)
        assert trace.arrivals > 0 and trace.departures > 0

    def test_mixed_types_cover_all_flavours(self):
        trace = churn_trace(90, seed=9, mixed_types=True)
        kinds = {
            type(e.task.period)
            for e in trace
            if e.kind == ARRIVE
        }
        assert int in kinds and Fraction in kinds

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown trace scenario"):
            generate_trace("tsunami", 10)

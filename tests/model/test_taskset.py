"""Unit tests for the TaskSet container."""

from fractions import Fraction

import pytest

from repro.model import SporadicTask, TaskSet, TaskSetError, task


class TestConstruction:
    def test_of_accepts_tuples_and_tasks(self):
        ts = TaskSet.of((1, 2, 3), task(2, 4, 6))
        assert len(ts) == 2
        assert ts[0].period == 3

    def test_rejects_non_tasks(self):
        with pytest.raises(TaskSetError):
            TaskSet([(1, 2, 3)])  # type: ignore[list-item]

    def test_rejects_duplicate_names(self):
        with pytest.raises(TaskSetError, match="duplicate"):
            TaskSet([task(1, 2, 3, name="a"), task(2, 3, 4, name="a")])

    def test_unnamed_duplicates_fine(self):
        TaskSet([task(1, 2, 3), task(1, 2, 3)])  # must not raise

    def test_empty_set_allowed(self):
        ts = TaskSet([])
        assert len(ts) == 0
        assert ts.utilization == 0
        assert ts.hyperperiod == 0


class TestSequenceProtocol:
    def test_indexing_and_slicing(self):
        ts = TaskSet.of((1, 2, 3), (2, 3, 4), (3, 4, 5))
        assert ts[1].wcet == 2
        sliced = ts[:2]
        assert isinstance(sliced, TaskSet)
        assert len(sliced) == 2

    def test_equality_and_hash(self):
        a = TaskSet.of((1, 2, 3))
        b = TaskSet.of((1, 2, 3))
        assert a == b
        assert hash(a) == hash(b)
        assert a != TaskSet.of((1, 2, 4))


class TestAggregates:
    def test_utilization_exact_sum(self):
        ts = TaskSet.of((1, 3, 3), (1, 6, 6))
        assert ts.utilization == Fraction(1, 2)

    def test_utilization_returns_int_when_integral(self):
        ts = TaskSet.of((1, 2, 2), (1, 2, 2))
        assert ts.utilization == 1
        assert type(ts.utilization) is int

    def test_extrema(self):
        ts = TaskSet.of((1, 5, 10), (2, 3, 20))
        assert ts.max_deadline == 5
        assert ts.min_deadline == 3
        assert ts.max_period == 20
        assert ts.min_period == 10
        assert ts.period_ratio == 2.0

    def test_hyperperiod(self):
        ts = TaskSet.of((1, 4, 4), (1, 6, 6))
        assert ts.hyperperiod == 12

    def test_hyperperiod_rational(self):
        ts = TaskSet([task(1, 1, Fraction(1, 2)), task(1, 1, Fraction(1, 3))])
        assert ts.hyperperiod == 1

    def test_total_wcet(self):
        assert TaskSet.of((1, 2, 3), (4, 5, 6)).total_wcet == 5

    def test_average_gap_ratio(self):
        ts = TaskSet.of((1, 8, 10), (1, 6, 10))  # gaps 20% and 40%
        assert ts.average_gap_ratio == pytest.approx(0.3)

    def test_constrained_flag(self):
        assert TaskSet.of((1, 5, 10)).has_constrained_deadlines
        assert not TaskSet.of((1, 15, 10)).has_constrained_deadlines

    def test_synchronous_flag(self):
        assert TaskSet.of((1, 2, 3)).is_synchronous
        assert not TaskSet([task(1, 2, 3, phase=1)]).is_synchronous


class TestViews:
    def test_by_deadline_sorted(self):
        ts = TaskSet.of((1, 9, 10), (1, 3, 10), (1, 6, 10))
        assert [t.deadline for t in ts.by_deadline] == [3, 6, 9]

    def test_scaled(self):
        ts = TaskSet.of((1, 2, 4)).scaled(5)
        assert ts[0].period == 20
        assert ts.utilization == Fraction(1, 4)

    def test_without_and_extended(self):
        ts = TaskSet.of((1, 2, 3), (2, 3, 4))
        assert len(ts.without(0)) == 1
        assert ts.without(0)[0].wcet == 2
        assert len(ts.extended([task(5, 6, 7)])) == 3

    def test_renamed(self):
        assert TaskSet.of((1, 2, 3)).renamed("x").name == "x"


class TestDemand:
    def test_dbf_is_sum_of_task_dbfs(self):
        ts = TaskSet.of((2, 6, 10), (3, 11, 16))
        for interval in (0, 5, 6, 11, 16, 26, 27, 100):
            assert ts.dbf(interval) == sum(t.dbf(interval) for t in ts)

    def test_summary_mentions_all_tasks(self):
        ts = TaskSet.of((1, 2, 3), (2, 3, 4)).renamed("demo")
        text = ts.summary()
        assert "demo" in text
        assert text.count("C=") == 2

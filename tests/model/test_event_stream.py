"""Unit tests for the event-stream model (Gresser)."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model import (
    EventStream,
    EventStreamElement,
    EventStreamError,
    EventStreamTask,
)


class TestElement:
    def test_validation(self):
        with pytest.raises(EventStreamError):
            EventStreamElement(offset=-1)
        with pytest.raises(EventStreamError):
            EventStreamElement(offset=0, period=0)

    def test_eta_periodic(self):
        e = EventStreamElement(offset=2, period=5)  # events at 2, 7, 12...
        assert e.eta(1) == 0
        assert e.eta(2) == 1
        assert e.eta(7) == 2
        assert e.eta(11) == 2

    def test_eta_one_shot(self):
        e = EventStreamElement(offset=3)
        assert e.eta(2) == 0
        assert e.eta(3) == 1
        assert e.eta(100) == 1


class TestStream:
    def test_needs_elements(self):
        with pytest.raises(EventStreamError):
            EventStream([])

    def test_elements_sorted_by_offset(self):
        s = EventStream([EventStreamElement(5, 10), EventStreamElement(0, 10)])
        assert [e.offset for e in s.elements] == [0, 5]

    def test_periodic_constructor(self):
        s = EventStream.periodic(10)
        assert s.eta(0) == 1
        assert s.eta(10) == 2
        assert s.rate == Fraction(1, 10)

    def test_burst_constructor(self):
        s = EventStream.burst(count=3, spacing=2, period=20)
        # events at 0,2,4 then 20,22,24, ...
        assert s.eta(0) == 1
        assert s.eta(2) == 2
        assert s.eta(4) == 3
        assert s.eta(19) == 3
        assert s.eta(20) == 4
        assert s.rate == Fraction(3, 20)

    def test_burst_validation(self):
        with pytest.raises(EventStreamError):
            EventStream.burst(count=0, spacing=1, period=10)
        with pytest.raises(EventStreamError):
            EventStream.burst(count=3, spacing=5, period=10)  # doesn't fit
        with pytest.raises(EventStreamError):
            EventStream.burst(count=2, spacing=0, period=10)

    def test_equality_and_hash(self):
        a = EventStream.periodic(10)
        b = EventStream.periodic(10)
        assert a == b and hash(a) == hash(b)

    @given(st.integers(min_value=0, max_value=200))
    def test_eta_monotone(self, x):
        s = EventStream.burst(count=3, spacing=3, period=25)
        assert s.eta(x) <= s.eta(x + 1)

    def test_is_monotone_consistent(self):
        s = EventStream.burst(count=4, spacing=2, period=30)
        assert s.is_monotone_consistent(100)


class TestEventStreamTask:
    def test_validation(self):
        stream = EventStream.periodic(10)
        with pytest.raises(EventStreamError):
            EventStreamTask(stream=stream, wcet=-1, deadline=5)
        with pytest.raises(EventStreamError):
            EventStreamTask(stream=stream, wcet=1, deadline=0)

    def test_utilization(self):
        est = EventStreamTask(
            stream=EventStream.burst(count=2, spacing=3, period=10), wcet=2, deadline=4
        )
        assert est.utilization == Fraction(2, 5)  # 2 events/10 * C=2

    def test_dbf_shifts_eta_by_deadline(self):
        est = EventStreamTask(stream=EventStream.periodic(10), wcet=3, deadline=4)
        assert est.dbf(3) == 0
        assert est.dbf(4) == 3
        assert est.dbf(14) == 6

    def test_dbf_equals_component_sum(self):
        """The flattening (the paper's event-stream extension) is exact."""
        est = EventStreamTask(
            stream=EventStream.burst(count=3, spacing=4, period=50),
            wcet=2,
            deadline=7,
        )
        comps = est.to_components()
        for interval in range(0, 160):
            assert est.dbf(interval) == sum(c.dbf(interval) for c in comps), interval

    def test_component_sources_labelled(self):
        est = EventStreamTask(
            stream=EventStream.burst(count=2, spacing=1, period=9),
            wcet=1,
            deadline=2,
            name="burst",
        )
        assert [c.source for c in est.to_components()] == ["burst[0]", "burst[1]"]

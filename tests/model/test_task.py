"""Unit tests for the sporadic task model."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model import SporadicTask, TaskParameterError, task


class TestConstruction:
    def test_parameters_normalised(self):
        t = SporadicTask(wcet=2.0, deadline=Fraction(6, 2), period=4)
        assert t.wcet == 2 and type(t.wcet) is int
        assert t.deadline == 3 and type(t.deadline) is int

    def test_equality_across_representations(self):
        assert task(0.5, 1, 2) == task(Fraction(1, 2), 1, 2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(wcet=-1, deadline=1, period=1),
            dict(wcet=1, deadline=0, period=1),
            dict(wcet=1, deadline=1, period=0),
            dict(wcet=1, deadline=1, period=-2),
            dict(wcet=1, deadline=1, period=1, phase=-1),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(TaskParameterError):
            SporadicTask(**kwargs)

    def test_zero_wcet_allowed(self):
        assert task(0, 5, 10).utilization == 0

    def test_name_not_part_of_equality(self):
        assert task(1, 2, 3, name="a") == task(1, 2, 3, name="b")


class TestDerivedQuantities:
    def test_utilization_exact(self):
        assert task(1, 3, 3).utilization == Fraction(1, 3)
        assert task(2, 4, 4).utilization == Fraction(1, 2)

    def test_density_uses_min_deadline_period(self):
        assert task(2, 4, 8).density == Fraction(1, 2)
        assert task(2, 8, 4).density == Fraction(1, 2)

    def test_laxity_and_gap(self):
        t = task(2, 6, 10)
        assert t.laxity == 4
        assert t.gap == 4

    def test_deadline_classes(self):
        assert task(1, 5, 5).is_implicit_deadline
        assert task(1, 4, 5).is_constrained_deadline
        assert not task(1, 6, 5).is_constrained_deadline


class TestDemand:
    def test_dbf_staircase_hand_computed(self):
        t = task(2, 6, 10)  # deadlines at 6, 16, 26, ...
        assert t.dbf(5) == 0
        assert t.dbf(6) == 2
        assert t.dbf(15) == 2
        assert t.dbf(16) == 4
        assert t.dbf(26) == 6

    def test_dbf_deadline_beyond_period(self):
        t = task(3, 12, 5)  # deadlines at 12, 17, 22, ...
        assert t.dbf(11) == 0
        assert t.dbf(12) == 3
        assert t.dbf(17) == 6

    def test_rbf(self):
        t = task(2, 6, 10)
        assert t.rbf(0) == 0
        assert t.rbf(1) == 2
        assert t.rbf(10) == 2
        assert t.rbf(11) == 4

    @given(st.integers(min_value=0, max_value=500))
    def test_dbf_between_rbf_relationship(self, interval):
        t = task(3, 4, 7)
        # Demand by deadline can never exceed demand released.
        assert t.dbf(interval) <= t.rbf(interval) + t.wcet

    @given(st.integers(min_value=0, max_value=300), st.integers(min_value=0, max_value=300))
    def test_dbf_monotone(self, a, b):
        t = task(2, 5, 9)
        lo, hi = min(a, b), max(a, b)
        assert t.dbf(lo) <= t.dbf(hi)


class TestDeadlines:
    def test_deadlines_bounded(self):
        t = task(1, 4, 10)
        assert list(t.deadlines(30)) == [4, 14, 24]

    def test_job_deadline(self):
        t = task(1, 4, 10)
        assert t.job_deadline(0) == 4
        assert t.job_deadline(3) == 34
        with pytest.raises(ValueError):
            t.job_deadline(-1)

    def test_next_deadline_after_lemma5(self):
        t = task(1, 4, 10)
        assert t.next_deadline_after(0) == 4
        assert t.next_deadline_after(4) == 14  # strictly after
        assert t.next_deadline_after(13) == 14
        assert t.next_deadline_after(14) == 24

    @given(st.integers(min_value=0, max_value=1000))
    def test_next_deadline_is_first_strictly_greater(self, instant):
        t = task(2, 7, 11)
        nxt = t.next_deadline_after(instant)
        assert nxt > instant
        assert (nxt - t.deadline) % t.period == 0
        # No deadline lies strictly between instant and nxt.
        previous = nxt - t.period
        assert previous <= instant or previous < t.deadline


class TestTransformations:
    def test_scaled_preserves_structure(self):
        t = task(2, 6, 10, phase=4)
        s = t.scaled(3)
        assert (s.wcet, s.deadline, s.period, s.phase) == (6, 18, 30, 12)
        assert s.utilization == t.utilization

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(TaskParameterError):
            task(1, 2, 3).scaled(0)

    def test_with_deadline_and_wcet(self):
        t = task(2, 6, 10, name="x")
        assert t.with_deadline(8).deadline == 8
        assert t.with_wcet(1).wcet == 1
        assert t.with_deadline(8).name == "x"

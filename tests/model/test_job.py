"""Unit tests for simulator job instances."""

from repro.model import Job


class TestJob:
    def test_released_factory(self):
        j = Job.released(task_index=1, job_index=2, release=10, deadline=5, wcet=3)
        assert j.absolute_deadline == 15
        assert j.remaining == 3
        assert not j.is_complete
        assert j.response_time is None

    def test_edf_ordering(self):
        early = Job.released(0, 0, release=0, deadline=5, wcet=1)
        late = Job.released(1, 0, release=0, deadline=9, wcet=1)
        assert early < late

    def test_tie_broken_by_release_then_task(self):
        a = Job.released(0, 0, release=0, deadline=10, wcet=1)
        b = Job.released(1, 0, release=2, deadline=8, wcet=1)  # same abs deadline
        assert a < b
        c = Job.released(0, 0, release=0, deadline=10, wcet=1)
        d = Job.released(1, 0, release=0, deadline=10, wcet=1)
        assert c < d

    def test_completion_and_miss(self):
        j = Job.released(0, 0, release=0, deadline=5, wcet=2)
        j.remaining = 0
        j.completion = 4
        assert j.is_complete
        assert j.response_time == 4
        assert not j.missed_deadline()
        j.completion = 6
        assert j.missed_deadline()

"""Unit tests for demand components — the tests' common currency."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model import (
    DemandComponent,
    EventStream,
    EventStreamTask,
    ModelError,
    SporadicTask,
    TaskSet,
    as_components,
    task,
    total_utilization,
)


def component(c=2, d0=6, t=10):
    return DemandComponent(wcet=c, first_deadline=d0, period=t)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ModelError):
            DemandComponent(wcet=-1, first_deadline=1, period=1)
        with pytest.raises(ModelError):
            DemandComponent(wcet=1, first_deadline=0, period=1)
        with pytest.raises(ModelError):
            DemandComponent(wcet=1, first_deadline=1, period=0)

    def test_one_shot(self):
        c = DemandComponent(wcet=3, first_deadline=5)
        assert not c.is_recurrent
        assert c.utilization == 0
        assert c.dbf(4) == 0
        assert c.dbf(5) == 3
        assert c.dbf(500) == 3
        assert c.next_deadline_after(4) == 5
        assert c.next_deadline_after(5) is None


class TestAsComponents:
    def test_taskset_conversion(self):
        ts = TaskSet.of((2, 6, 10), (3, 11, 16))
        comps = as_components(ts)
        assert len(comps) == 2
        assert comps[0].first_deadline == 6
        assert comps[0].period == 10

    def test_zero_wcet_dropped(self):
        comps = as_components([task(0, 5, 5), task(1, 5, 5)])
        assert len(comps) == 1

    def test_components_pass_through(self):
        c = component()
        assert as_components([c]) == [c]

    def test_event_stream_task_flattened(self):
        est = EventStreamTask(
            stream=EventStream.burst(count=3, spacing=2, period=20),
            wcet=1,
            deadline=5,
        )
        comps = as_components([est])
        assert len(comps) == 3
        assert [c.first_deadline for c in comps] == [5, 7, 9]
        assert all(c.period == 20 for c in comps)

    def test_unsupported_entry_rejected(self):
        with pytest.raises(ModelError):
            as_components([42])  # type: ignore[list-item]

    def test_total_utilization(self):
        comps = as_components(TaskSet.of((1, 2, 4), (1, 4, 4)))
        assert total_utilization(comps) == Fraction(1, 2)


class TestDemandFunctions:
    def test_dbf_matches_task(self):
        t = task(2, 6, 10)
        c = as_components([t])[0]
        for interval in range(0, 60):
            assert c.dbf(interval) == t.dbf(interval)

    def test_jobs_up_to(self):
        c = component()  # deadlines 6, 16, 26...
        assert c.jobs_up_to(5) == 0
        assert c.jobs_up_to(6) == 1
        assert c.jobs_up_to(16) == 2
        assert c.jobs_up_to(25) == 2

    def test_deadline_at(self):
        c = component()
        assert c.deadline_at(0) == 6
        assert c.deadline_at(2) == 26
        with pytest.raises(ValueError):
            c.deadline_at(-1)
        one_shot = DemandComponent(wcet=1, first_deadline=4)
        assert one_shot.deadline_at(0) == 4
        with pytest.raises(ValueError):
            one_shot.deadline_at(1)

    def test_deadlines_iterator(self):
        assert list(component().deadlines(30)) == [6, 16, 26]


class TestEnvelope:
    """The linear envelope underlies Lemma 6 and both new tests."""

    def test_envelope_at_corners_equals_dbf(self):
        c = component()
        for k in range(5):
            corner = c.deadline_at(k)
            assert c.linear_envelope(corner) == c.dbf(corner)

    @given(st.integers(min_value=0, max_value=500))
    def test_envelope_dominates_dbf(self, interval):
        c = component(c=3, d0=7, t=11)
        assert c.linear_envelope(interval) >= c.dbf(interval)

    @given(st.integers(min_value=7, max_value=500))
    def test_lemma6_error_is_fractional_part(self, interval):
        c = component(c=3, d0=7, t=11)
        err = c.approximation_error(interval)
        expected = Fraction((interval - 7) % 11, 11) * 3
        assert err == expected

    def test_error_zero_before_first_deadline(self):
        assert component().approximation_error(3) == 0

    def test_one_shot_envelope_exact(self):
        c = DemandComponent(wcet=4, first_deadline=9)
        assert c.linear_envelope(9) == 4
        assert c.linear_envelope(100) == 4
        assert c.approximation_error(50) == 0

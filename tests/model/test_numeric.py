"""Unit tests for exact-arithmetic helpers."""

import math
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.numeric import (
    as_float,
    ceil_div,
    exact_gcd,
    exact_lcm,
    floor_div,
    frac_part,
    is_exact,
    to_exact,
)


class TestToExact:
    def test_int_passthrough(self):
        assert to_exact(7) == 7
        assert type(to_exact(7)) is int

    def test_integral_fraction_becomes_int(self):
        assert to_exact(Fraction(6, 2)) == 3
        assert type(to_exact(Fraction(6, 2))) is int

    def test_proper_fraction_preserved(self):
        assert to_exact(Fraction(1, 3)) == Fraction(1, 3)

    def test_float_is_exact_binary_rational(self):
        assert to_exact(0.5) == Fraction(1, 2)
        # 0.1 is NOT 1/10 in binary, and the conversion must not pretend it is.
        assert to_exact(0.1) == Fraction(0.1)
        assert to_exact(0.1) != Fraction(1, 10)

    def test_integral_float_becomes_int(self):
        assert to_exact(4.0) == 4
        assert type(to_exact(4.0)) is int

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            to_exact(float("nan"))
        with pytest.raises(ValueError):
            to_exact(float("inf"))

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            to_exact("3")  # type: ignore[arg-type]


class TestIsExact:
    def test_values(self):
        assert is_exact(3)
        assert is_exact(Fraction(1, 2))
        assert not is_exact(0.5)
        assert not is_exact(True)  # bools are not times


class TestDivisions:
    @given(
        st.integers(min_value=-10_000, max_value=10_000),
        st.integers(min_value=1, max_value=500),
    )
    def test_int_floor_ceil_consistent_with_math(self, a, b):
        assert floor_div(a, b) == math.floor(a / Fraction(b))
        assert ceil_div(a, b) == math.ceil(a / Fraction(b))

    @given(
        st.fractions(min_value=-100, max_value=100),
        st.fractions(min_value=Fraction(1, 50), max_value=50),
    )
    def test_fraction_floor_ceil(self, a, b):
        assert floor_div(a, b) == math.floor(a / b)
        assert ceil_div(a, b) == math.ceil(a / b)

    def test_exact_boundaries(self):
        assert floor_div(6, 3) == 2
        assert ceil_div(6, 3) == 2
        assert ceil_div(7, 3) == 3


class TestFracPart:
    def test_values(self):
        assert frac_part(5) == 0
        assert frac_part(Fraction(7, 2)) == Fraction(1, 2)
        assert frac_part(Fraction(-1, 4)) == Fraction(3, 4)

    @given(st.fractions(min_value=-50, max_value=50))
    def test_range(self, x):
        f = frac_part(x)
        assert 0 <= f < 1
        assert (x - f) % 1 == 0


class TestLcmGcd:
    def test_int_lcm(self):
        assert exact_lcm(4, 6) == 12

    def test_fraction_lcm(self):
        # lcm(1/2, 1/3) = 1: smallest rational both divide integrally.
        assert exact_lcm(Fraction(1, 2), Fraction(1, 3)) == 1
        assert exact_lcm(Fraction(3, 2), Fraction(1, 2)) == Fraction(3, 2)

    def test_fraction_gcd(self):
        assert exact_gcd(Fraction(1, 2), Fraction(1, 3)) == Fraction(1, 6)
        assert exact_gcd(4, 6) == 2

    @given(
        st.fractions(min_value=Fraction(1, 20), max_value=20),
        st.fractions(min_value=Fraction(1, 20), max_value=20),
    )
    def test_lcm_is_common_multiple(self, a, b):
        m = exact_lcm(a, b)
        assert (Fraction(m) / Fraction(a)).denominator == 1
        assert (Fraction(m) / Fraction(b)).denominator == 1


def test_as_float():
    assert as_float(Fraction(1, 2)) == 0.5
    assert as_float(3) == 3.0

"""Unit tests for JSON round-tripping of task sets and systems."""

import json
from fractions import Fraction

import pytest

from repro.model import (
    ModelError,
    SporadicTask,
    TaskSet,
    dump_system,
    dump_taskset,
    dumps_system,
    dumps_taskset,
    load_any,
    load_system,
    load_taskset,
    loads_system,
    loads_taskset,
    system_from_dict,
    system_to_dict,
    task,
    taskset_from_dict,
    taskset_to_dict,
)
from repro.partition import PartitionedSystem, Platform


class TestRoundTrip:
    def test_integer_set(self):
        ts = TaskSet.of((2, 6, 10), (3, 11, 16)).renamed("demo")
        again = loads_taskset(dumps_taskset(ts))
        assert again == ts
        assert again.name == "demo"

    def test_fraction_parameters_survive_exactly(self):
        ts = TaskSet([task(Fraction(1, 3), Fraction(5, 7), 2, name="frac")])
        again = loads_taskset(dumps_taskset(ts))
        assert again[0].wcet == Fraction(1, 3)
        assert again[0].deadline == Fraction(5, 7)

    def test_phase_preserved(self):
        ts = TaskSet([task(1, 2, 3, phase=7)])
        assert loads_taskset(dumps_taskset(ts))[0].phase == 7

    def test_file_round_trip(self, tmp_path):
        ts = TaskSet.of((1, 2, 3))
        path = tmp_path / "set.json"
        dump_taskset(ts, path)
        assert load_taskset(path) == ts


class TestValidation:
    def test_requires_tasks_key(self):
        with pytest.raises(ModelError):
            taskset_from_dict({"format": "repro/taskset-v1"})

    def test_rejects_unknown_format(self):
        with pytest.raises(ModelError, match="format"):
            taskset_from_dict({"format": "other/v9", "tasks": []})

    def test_rejects_bad_time_strings(self):
        doc = taskset_to_dict(TaskSet.of((1, 2, 3)))
        doc["tasks"][0]["wcet"] = "not-a-number"
        with pytest.raises(ModelError):
            taskset_from_dict(doc)

    def test_rejects_bool_time(self):
        doc = taskset_to_dict(TaskSet.of((1, 2, 3)))
        doc["tasks"][0]["wcet"] = True
        with pytest.raises(ModelError):
            taskset_from_dict(doc)

    def test_float_times_accepted(self):
        doc = taskset_to_dict(TaskSet.of((1, 2, 3)))
        doc["tasks"][0]["wcet"] = 0.5
        ts = taskset_from_dict(doc)
        assert ts[0].wcet == Fraction(1, 2)

    def test_missing_task_fields_named_in_error(self):
        doc = taskset_to_dict(TaskSet.of((1, 2, 3)))
        del doc["tasks"][0]["period"]
        with pytest.raises(ModelError, match="entry 0 is missing 'period'"):
            taskset_from_dict(doc)


def demo_system(assignment=(0, 1, 0)) -> PartitionedSystem:
    tasks = TaskSet.of((2, 6, 10), (3, 11, 16), (5, 25, 25)).renamed("demo")
    return PartitionedSystem(tasks, Platform(2, name="ecu"), assignment)


class TestSystemRoundTrip:
    def test_full_system(self):
        system = demo_system()
        again = loads_system(dumps_system(system))
        assert again == system
        assert again.platform.name == "ecu"
        assert again.tasks.name == "demo"

    def test_partial_assignment_with_nulls(self):
        system = demo_system(assignment=(0, None, 1))
        again = loads_system(dumps_system(system))
        assert again.assignment == (0, None, 1)
        assert again.unassigned == (1,)

    def test_assignment_key_is_optional(self):
        doc = system_to_dict(demo_system())
        del doc["assignment"]
        again = system_from_dict(doc)
        assert again.assignment == (None, None, None)

    def test_fraction_times_survive_exactly(self):
        tasks = TaskSet([task(Fraction(1, 3), Fraction(5, 7), 2, name="f")])
        system = PartitionedSystem(tasks, Platform(3), [2])
        again = loads_system(dumps_system(system))
        assert again.tasks[0].wcet == Fraction(1, 3)
        assert again.tasks[0].deadline == Fraction(5, 7)
        assert again.assignment == (2,)

    def test_file_round_trip_and_load_any(self, tmp_path):
        system = demo_system()
        path = tmp_path / "system.json"
        dump_system(system, path)
        assert load_system(path) == system
        assert load_any(path) == system

    def test_load_any_dispatches_tasksets_too(self, tmp_path):
        ts = TaskSet.of((1, 2, 3))
        path = tmp_path / "set.json"
        dump_taskset(ts, path)
        loaded = load_any(path)
        assert isinstance(loaded, TaskSet)
        assert loaded == ts

    def test_verdicts_reproduce_after_round_trip(self):
        from repro.partition import verify_partition

        system = demo_system(assignment=(0, 0, 1))
        again = loads_system(dumps_system(system))
        before = verify_partition(system, method="exact")
        after = verify_partition(again, method="exact")
        assert before.ok == after.ok
        assert [v.exact.iterations for v in before.cores if v.exact] == [
            v.exact.iterations for v in after.cores if v.exact
        ]


class TestSystemValidation:
    def test_rejects_non_dict(self):
        with pytest.raises(ModelError, match="must be a dict"):
            system_from_dict([1, 2, 3])

    def test_rejects_missing_or_wrong_format(self):
        doc = system_to_dict(demo_system())
        del doc["format"]
        with pytest.raises(ModelError, match="unsupported system format"):
            system_from_dict(doc)
        doc["format"] = "repro/taskset-v1"
        with pytest.raises(ModelError, match="repro/system-v1"):
            system_from_dict(doc)

    def test_requires_platform_with_cores(self):
        doc = system_to_dict(demo_system())
        del doc["platform"]
        with pytest.raises(ModelError, match="'platform' object"):
            system_from_dict(doc)
        doc["platform"] = {"name": "no-cores"}
        with pytest.raises(ModelError, match="'cores'"):
            system_from_dict(doc)

    def test_platform_cores_validated(self):
        doc = system_to_dict(demo_system())
        doc["platform"]["cores"] = 0
        with pytest.raises(ModelError, match="at least one core"):
            system_from_dict(doc)
        doc["platform"]["cores"] = "2"
        with pytest.raises(ModelError, match="must be an int"):
            system_from_dict(doc)

    def test_requires_tasks(self):
        doc = system_to_dict(demo_system())
        del doc["tasks"]
        with pytest.raises(ModelError, match="'tasks' list"):
            system_from_dict(doc)
        doc["tasks"] = {"not": "a list"}
        with pytest.raises(ModelError, match="must be a list"):
            system_from_dict(doc)

    def test_assignment_shape_validated(self):
        doc = system_to_dict(demo_system())
        doc["assignment"] = "0,1,0"
        with pytest.raises(ModelError, match="'assignment' must be a list"):
            system_from_dict(doc)
        doc["assignment"] = [0, 1]
        with pytest.raises(ModelError, match="covers 2 tasks"):
            system_from_dict(doc)
        doc["assignment"] = [0, 1, 7]
        with pytest.raises(ModelError, match="outside the platform"):
            system_from_dict(doc)

    def test_bad_time_value_inside_system(self):
        doc = system_to_dict(demo_system())
        doc["tasks"][1]["wcet"] = "three-ish"
        with pytest.raises(ModelError, match="invalid time value"):
            system_from_dict(doc)

    def test_loads_system_surfaces_json_errors_as_json_errors(self):
        with pytest.raises(json.JSONDecodeError):
            loads_system("{not json")

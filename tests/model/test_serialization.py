"""Unit tests for JSON round-tripping of task sets."""

from fractions import Fraction

import pytest

from repro.model import (
    ModelError,
    SporadicTask,
    TaskSet,
    dump_taskset,
    dumps_taskset,
    load_taskset,
    loads_taskset,
    task,
    taskset_from_dict,
    taskset_to_dict,
)


class TestRoundTrip:
    def test_integer_set(self):
        ts = TaskSet.of((2, 6, 10), (3, 11, 16)).renamed("demo")
        again = loads_taskset(dumps_taskset(ts))
        assert again == ts
        assert again.name == "demo"

    def test_fraction_parameters_survive_exactly(self):
        ts = TaskSet([task(Fraction(1, 3), Fraction(5, 7), 2, name="frac")])
        again = loads_taskset(dumps_taskset(ts))
        assert again[0].wcet == Fraction(1, 3)
        assert again[0].deadline == Fraction(5, 7)

    def test_phase_preserved(self):
        ts = TaskSet([task(1, 2, 3, phase=7)])
        assert loads_taskset(dumps_taskset(ts))[0].phase == 7

    def test_file_round_trip(self, tmp_path):
        ts = TaskSet.of((1, 2, 3))
        path = tmp_path / "set.json"
        dump_taskset(ts, path)
        assert load_taskset(path) == ts


class TestValidation:
    def test_requires_tasks_key(self):
        with pytest.raises(ModelError):
            taskset_from_dict({"format": "repro/taskset-v1"})

    def test_rejects_unknown_format(self):
        with pytest.raises(ModelError, match="format"):
            taskset_from_dict({"format": "other/v9", "tasks": []})

    def test_rejects_bad_time_strings(self):
        doc = taskset_to_dict(TaskSet.of((1, 2, 3)))
        doc["tasks"][0]["wcet"] = "not-a-number"
        with pytest.raises(ModelError):
            taskset_from_dict(doc)

    def test_rejects_bool_time(self):
        doc = taskset_to_dict(TaskSet.of((1, 2, 3)))
        doc["tasks"][0]["wcet"] = True
        with pytest.raises(ModelError):
            taskset_from_dict(doc)

    def test_float_times_accepted(self):
        doc = taskset_to_dict(TaskSet.of((1, 2, 3)))
        doc["tasks"][0]["wcet"] = 0.5
        ts = taskset_from_dict(doc)
        assert ts[0].wcet == Fraction(1, 2)

"""Unit tests for the All-Approximated test (paper Section 4.2, Fig. 7)."""

import pytest

from repro.analysis import dbf, devi_test, processor_demand_test
from repro.core import RevisionPolicy, all_approx_test
from repro.model import EventStream, EventStreamTask, TaskSet, as_components, task
from repro.result import Verdict

from ..conftest import random_feasible_candidate


class TestExactness:
    def test_agrees_with_processor_demand(self, rng):
        feasible = infeasible = 0
        for _ in range(500):
            ts = random_feasible_candidate(rng)
            a = all_approx_test(ts)
            p = processor_demand_test(ts)
            assert a.is_feasible == p.is_feasible, ts.summary()
            feasible += a.is_feasible
            infeasible += not a.is_feasible
        assert feasible > 50 and infeasible > 50

    def test_witness_exact(self, infeasible_taskset):
        r = all_approx_test(infeasible_taskset)
        assert r.verdict is Verdict.INFEASIBLE
        assert r.witness.exact
        assert dbf(infeasible_taskset, r.witness.interval) == r.witness.demand

    def test_overload(self):
        r = all_approx_test(TaskSet.of((3, 2, 2)))
        assert r.verdict is Verdict.INFEASIBLE
        assert r.iterations == 0

    def test_empty(self):
        assert all_approx_test([]).verdict is Verdict.FEASIBLE

    def test_event_stream_system(self):
        system = [
            EventStreamTask(
                stream=EventStream.burst(count=4, spacing=3, period=60),
                wcet=2,
                deadline=8,
            ),
            task(6, 30, 40),
        ]
        comps = as_components(system)
        assert (
            all_approx_test(comps).is_feasible
            == processor_demand_test(comps).is_feasible
        )


class TestDeviEquivalentFastPath:
    """Paper Section 4.2: no revisions => behaviour equals Devi's test."""

    def test_devi_accepted_runs_without_revisions(self, rng):
        checked = 0
        for _ in range(300):
            ts = random_feasible_candidate(rng)
            if not devi_test(ts).is_feasible:
                continue
            r = all_approx_test(ts)
            assert r.is_feasible
            assert r.revisions == 0
            if ts.utilization < 1:
                assert r.iterations == len([t for t in ts if t.wcet > 0])
            else:
                # At U = 1 the busy-period backstop may cut pops short.
                assert r.iterations <= len([t for t in ts if t.wcet > 0])
            checked += 1
        assert checked > 50


class TestFullUtilizationBackstop:
    def test_u_equals_one_feasible(self):
        # Classic tight set: dbf touches capacity at every deadline.
        ts = TaskSet.of((1, 1, 2), (1, 3, 2))
        assert ts.utilization == 1
        r = all_approx_test(ts)
        assert r.verdict is Verdict.FEASIBLE

    def test_u_equals_one_infeasible(self, infeasible_taskset):
        assert infeasible_taskset.utilization == 1
        assert all_approx_test(infeasible_taskset).verdict is Verdict.INFEASIBLE

    def test_u_equals_one_agreement(self, rng):
        checked = 0
        for _ in range(400):
            ts = random_feasible_candidate(rng, max_tasks=3, max_period=12)
            if ts.utilization != 1:
                continue
            checked += 1
            assert (
                all_approx_test(ts).is_feasible
                == processor_demand_test(ts).is_feasible
            ), ts.summary()
        assert checked > 5


class TestRevisionPolicies:
    @pytest.mark.parametrize(
        "policy",
        [
            RevisionPolicy.FIFO,
            RevisionPolicy.LARGEST_ERROR,
            RevisionPolicy.LARGEST_UTILIZATION,
        ],
    )
    def test_policies_do_not_change_verdicts(self, rng, policy):
        for _ in range(200):
            ts = random_feasible_candidate(rng)
            assert (
                all_approx_test(ts, revision_policy=policy).is_feasible
                == processor_demand_test(ts).is_feasible
            ), (policy, ts.summary())

    def test_unknown_policy_rejected(self, simple_taskset):
        with pytest.raises(ValueError):
            all_approx_test(simple_taskset, revision_policy="random")

"""Unit tests for the core bound surface (paper Section 4.3)."""

from repro.core import compare_bounds, superposition_bound
from repro.model import TaskSet

from ..conftest import random_feasible_candidate


class TestCompareBounds:
    def test_reports_all_four(self, simple_taskset):
        bounds = compare_bounds(simple_taskset)
        assert set(bounds) == {"baruah", "george", "superposition", "busy_period"}
        assert all(v is not None for v in bounds.values())

    def test_full_utilization_marks_closed_forms_inapplicable(self):
        ts = TaskSet.of((1, 2, 2), (1, 2, 2))
        bounds = compare_bounds(ts)
        assert bounds["baruah"] is None
        assert bounds["george"] is None
        assert bounds["superposition"] is None
        assert bounds["busy_period"] == 2


class TestImplicitCheckClaim:
    """The All-Approximated test never visits intervals beyond Isup."""

    def test_all_approx_stays_within_superposition_bound(self, rng):
        from repro.core import all_approx_test

        for _ in range(200):
            ts = random_feasible_candidate(rng)
            if ts.utilization >= 1:
                continue
            r = all_approx_test(ts)
            if not r.is_feasible or r.witness is not None:
                continue
            bound = superposition_bound(ts)
            # No direct interval trace is exposed; the iteration count is
            # bounded by the number of component deadlines within Isup
            # plus one pop per revision.
            deadline_budget = 0
            for t in ts:
                if t.wcet == 0:
                    continue
                if t.deadline <= bound:
                    deadline_budget += (bound - t.deadline) // t.period + 1
            assert r.iterations <= deadline_budget + 2 * r.revisions + len(ts)

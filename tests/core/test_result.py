"""Unit tests for FeasibilityResult / FailureWitness semantics."""

from repro.result import FailureWitness, FeasibilityResult, Verdict


class TestVerdictSemantics:
    def test_bool_only_true_for_feasible(self):
        assert FeasibilityResult(verdict=Verdict.FEASIBLE, test_name="t")
        assert not FeasibilityResult(verdict=Verdict.INFEASIBLE, test_name="t")
        assert not FeasibilityResult(verdict=Verdict.UNKNOWN, test_name="t")

    def test_flags(self):
        r = FeasibilityResult(verdict=Verdict.UNKNOWN, test_name="t")
        assert not r.is_feasible and not r.is_infeasible
        assert not r.accepted

    def test_str_mentions_name_and_verdict(self):
        r = FeasibilityResult(verdict=Verdict.FEASIBLE, test_name="devi", iterations=5)
        text = str(r)
        assert "devi" in text and "feasible" in text and "5" in text


class TestWitness:
    def test_overflow(self):
        w = FailureWitness(interval=10, demand=13, exact=True)
        assert w.overflow == 3

    def test_holds_checks_independent_demand(self):
        w = FailureWitness(interval=10, demand=13, exact=True)
        assert w.holds(11)
        assert not w.holds(9)

    def test_str_of_result_with_witness(self):
        r = FeasibilityResult(
            verdict=Verdict.INFEASIBLE,
            test_name="pda",
            witness=FailureWitness(interval=4, demand=6, exact=True),
        )
        assert "witness" in str(r)

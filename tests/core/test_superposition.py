"""Unit tests for SuperPos(x) (paper Sections 3.4 / 3.5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import devi_test, processor_demand_test
from repro.core import (
    approximated_component_dbf,
    approximated_dbf,
    max_test_interval,
    superposition_test,
)
from repro.model import DemandComponent, TaskSet, as_components
from repro.result import Verdict

from ..conftest import random_feasible_candidate


class TestMaxTestInterval:
    def test_level_is_kth_job_deadline(self):
        c = DemandComponent(wcet=1, first_deadline=6, period=10)
        assert max_test_interval(c, 1) == 6
        assert max_test_interval(c, 3) == 26

    def test_one_shot(self):
        c = DemandComponent(wcet=1, first_deadline=6)
        assert max_test_interval(c, 5) == 6

    def test_rejects_bad_level(self):
        c = DemandComponent(wcet=1, first_deadline=6, period=10)
        with pytest.raises(ValueError):
            max_test_interval(c, 0)


class TestApproximatedDbf:
    """Paper Def. 4: exact up to Im, linear with slope C/T beyond."""

    def test_exact_below_im(self):
        c = DemandComponent(wcet=2, first_deadline=6, period=10)
        for interval in range(0, 27):
            assert approximated_component_dbf(c, interval, 3) == c.dbf(interval)

    def test_linear_beyond_im(self):
        c = DemandComponent(wcet=2, first_deadline=6, period=10)
        # Im(level 2) = 16, dbf(16) = 4; beyond: 4 + 0.2 * (I - 16).
        from fractions import Fraction
        assert approximated_component_dbf(c, 21, 2) == 4 + Fraction(2, 10) * 5

    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=200),
    )
    def test_dominates_dbf_and_shrinks_with_level(self, level, interval):
        c = DemandComponent(wcet=3, first_deadline=5, period=8)
        value = approximated_component_dbf(c, interval, level)
        assert value >= c.dbf(interval)
        assert value >= approximated_component_dbf(c, interval, level + 1)

    def test_superposition_is_sum(self, simple_taskset):
        comps = as_components(simple_taskset)
        for interval in (0, 10, 30, 55):
            assert approximated_dbf(comps, interval, 2) == sum(
                approximated_component_dbf(c, interval, 2) for c in comps
            )


class TestSuperposTest:
    def test_soundness(self, rng):
        """Acceptance at any level implies exact feasibility (Lemma 1)."""
        accepted = 0
        for _ in range(250):
            ts = random_feasible_candidate(rng)
            exact = processor_demand_test(ts).is_feasible
            for level in (1, 2, 4):
                if superposition_test(ts, level).is_feasible:
                    accepted += 1
                    assert exact, ts.summary()
        assert accepted > 100

    def test_monotone_in_level(self, rng):
        """Higher level never loses an accepted set (paper Figure 1)."""
        for _ in range(200):
            ts = random_feasible_candidate(rng)
            previous = None
            for level in (1, 2, 3, 5, 8):
                current = superposition_test(ts, level).is_feasible
                if previous is not None and previous:
                    assert current, (level, ts.summary())
                previous = current

    def test_converges_to_exact(self, rng):
        """At a level past the bound every feasible set is accepted."""
        for _ in range(100):
            ts = random_feasible_candidate(rng)
            if not processor_demand_test(ts).is_feasible:
                continue
            assert superposition_test(ts, 10_000).is_feasible, ts.summary()

    def test_rejection_is_unknown(self):
        ts = TaskSet.of((4, 8, 40), (6, 21, 60), (11, 51, 100), (13, 76, 120),
                        (23, 127, 200), (27, 187, 300), (69, 425, 600),
                        (92, 765, 1000), (126, 1190, 1500))
        r = superposition_test(ts, 1)
        assert r.verdict is Verdict.UNKNOWN

    def test_level1_iterations_one_per_task(self):
        ts = TaskSet.of((1, 10, 10), (1, 12, 12), (1, 14, 14))
        r = superposition_test(ts, 1)
        assert r.is_feasible
        assert r.iterations == 3

    def test_overload(self):
        assert superposition_test(TaskSet.of((3, 2, 2)), 2).verdict is Verdict.INFEASIBLE

    def test_rejects_bad_level(self, simple_taskset):
        with pytest.raises(ValueError):
            superposition_test(simple_taskset, 0)


class TestLemma2:
    """Devi-accepted implies SuperPos(1)-accepted; equality when D <= T."""

    def test_devi_implies_superpos1(self, rng):
        for _ in range(300):
            ts = random_feasible_candidate(rng)
            if devi_test(ts).is_feasible:
                assert superposition_test(ts, 1).is_feasible, ts.summary()

    def test_equivalence_on_constrained_deadlines(self, rng):
        agree = 0
        for _ in range(300):
            ts = random_feasible_candidate(rng)
            constrained = TaskSet(
                [t.with_deadline(min(t.deadline, t.period)) for t in ts]
            )
            d = devi_test(constrained).is_feasible
            s = superposition_test(constrained, 1).is_feasible
            assert d == s, constrained.summary()
            agree += 1
        assert agree == 300

"""Unit tests for the epsilon-parameterised approximation ([8] reading)."""

from fractions import Fraction

import pytest

from repro.analysis import processor_demand_test, scaled_wcets
from repro.core import approx_test_with_error, epsilon_to_level, superposition_test
from repro.model import TaskSet
from repro.result import Verdict

from ..conftest import random_feasible_candidate


class TestEpsilonToLevel:
    def test_mapping(self):
        assert epsilon_to_level(Fraction(1, 2)) == 2
        assert epsilon_to_level(Fraction(1, 10)) == 10
        assert epsilon_to_level(0.3) == 4  # ceil(1/0.3)

    def test_validation(self):
        for bad in (0, 1, -0.1, 2):
            with pytest.raises(ValueError):
                epsilon_to_level(bad)


class TestApproxTestWithError:
    def test_is_superpos_at_mapped_level(self, rng):
        for _ in range(100):
            ts = random_feasible_candidate(rng)
            eps = Fraction(1, 4)
            a = approx_test_with_error(ts, eps)
            s = superposition_test(ts, 4)
            assert a.verdict == s.verdict
            assert a.iterations == s.iterations
            assert a.max_level == 4
            assert a.details["epsilon"] == eps

    def test_acceptance_is_sound(self, rng):
        for _ in range(150):
            ts = random_feasible_candidate(rng)
            if approx_test_with_error(ts, Fraction(1, 3)).is_feasible:
                assert processor_demand_test(ts).is_feasible, ts.summary()

    def test_rejection_implies_infeasible_at_reduced_speed(self, rng):
        """The resource-augmentation guarantee, checked mechanically."""
        rejected = 0
        eps = Fraction(1, 4)
        for _ in range(400):
            ts = random_feasible_candidate(rng)
            result = approx_test_with_error(ts, eps)
            if result.verdict is Verdict.FEASIBLE:
                continue
            rejected += 1
            slower = scaled_wcets(ts, 1 - eps)
            assert not processor_demand_test(slower).is_feasible, ts.summary()
        assert rejected > 20

    def test_smaller_epsilon_accepts_no_less(self, rng):
        for _ in range(100):
            ts = random_feasible_candidate(rng)
            coarse = approx_test_with_error(ts, Fraction(1, 2)).is_feasible
            fine = approx_test_with_error(ts, Fraction(1, 8)).is_feasible
            if coarse:
                assert fine, ts.summary()

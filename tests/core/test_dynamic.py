"""Unit tests for the Dynamic Error test (paper Section 4.1, Fig. 5)."""

import pytest

from repro.analysis import BoundMethod, dbf, devi_test, processor_demand_test
from repro.core import LevelSchedule, dynamic_test
from repro.model import EventStream, EventStreamTask, TaskSet, as_components
from repro.result import Verdict

from ..conftest import random_feasible_candidate


class TestExactness:
    def test_agrees_with_processor_demand(self, rng):
        feasible = infeasible = 0
        for _ in range(500):
            ts = random_feasible_candidate(rng)
            d = dynamic_test(ts)
            p = processor_demand_test(ts)
            assert d.is_feasible == p.is_feasible, ts.summary()
            feasible += d.is_feasible
            infeasible += not d.is_feasible
        assert feasible > 50 and infeasible > 50

    def test_infeasible_witness_is_exact(self, infeasible_taskset):
        r = dynamic_test(infeasible_taskset)
        assert r.verdict is Verdict.INFEASIBLE
        assert r.witness.exact
        assert dbf(infeasible_taskset, r.witness.interval) == r.witness.demand
        assert r.witness.demand > r.witness.interval

    def test_overload(self):
        r = dynamic_test(TaskSet.of((3, 2, 2)))
        assert r.verdict is Verdict.INFEASIBLE
        assert r.iterations == 0

    def test_empty(self):
        assert dynamic_test([]).verdict is Verdict.FEASIBLE

    def test_event_stream_system(self):
        system = [
            EventStreamTask(
                stream=EventStream.burst(count=3, spacing=2, period=40),
                wcet=2,
                deadline=6,
            ),
            TaskSet.of((5, 20, 25))[0],
        ]
        comps = as_components(system)
        assert dynamic_test(comps).is_feasible == processor_demand_test(comps).is_feasible


class TestDeviFastPath:
    """Paper: sets accepted by Devi run entirely at SuperPos(1)."""

    def test_devi_accepted_costs_one_comparison_per_task(self, rng):
        checked = 0
        for _ in range(300):
            ts = random_feasible_candidate(rng)
            if not devi_test(ts).is_feasible:
                continue
            r = dynamic_test(ts)
            assert r.is_feasible
            assert r.max_level == 1
            assert r.revisions == 0
            assert r.iterations <= len([t for t in ts if t.wcet > 0])
            checked += 1
        assert checked > 50


class TestLevelCap:
    def test_cap_yields_unknown_when_revisions_needed(self):
        # Feasible but rejected by SuperPos(1): needs level > 1.
        ts = TaskSet.of((4, 8, 40), (6, 21, 60), (11, 51, 100), (13, 76, 120),
                        (23, 127, 200), (27, 187, 300), (69, 425, 600),
                        (92, 765, 1000), (126, 1190, 1500))
        full = dynamic_test(ts)
        assert full.is_feasible
        assert full.max_level > 1
        capped = dynamic_test(ts, max_level=1)
        assert capped.verdict is Verdict.UNKNOWN
        assert capped.witness is not None and not capped.witness.exact

    def test_cap_never_flips_a_verdict(self, rng):
        for _ in range(200):
            ts = random_feasible_candidate(rng)
            full = dynamic_test(ts)
            capped = dynamic_test(ts, max_level=2)
            if capped.verdict is not Verdict.UNKNOWN:
                assert capped.verdict == full.verdict, ts.summary()

    def test_rejects_bad_cap(self, simple_taskset):
        with pytest.raises(ValueError):
            dynamic_test(simple_taskset, max_level=0)


class TestSchedules:
    def test_increment_schedule_same_verdicts(self, rng):
        for _ in range(150):
            ts = random_feasible_candidate(rng)
            double = dynamic_test(ts)
            increment = dynamic_test(ts, level_schedule=LevelSchedule.INCREMENT)
            assert double.is_feasible == increment.is_feasible, ts.summary()

    def test_unknown_schedule_rejected(self, simple_taskset):
        with pytest.raises(ValueError):
            dynamic_test(simple_taskset, level_schedule="fibonacci")


class TestBoundMethods:
    @pytest.mark.parametrize(
        "method", [BoundMethod.SUPERPOSITION, BoundMethod.BEST, BoundMethod.BUSY_PERIOD]
    )
    def test_verdict_independent_of_bound(self, rng, method):
        for _ in range(150):
            ts = random_feasible_candidate(rng)
            assert (
                dynamic_test(ts, bound_method=method).is_feasible
                == processor_demand_test(ts).is_feasible
            ), (method, ts.summary())

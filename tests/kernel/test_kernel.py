"""Unit tests for the compiled demand kernel (repro.kernel)."""

from fractions import Fraction

import pytest

from repro.analysis.dbf import (
    dbf as reference_dbf,
    demand_profile as reference_profile,
    first_overflow as reference_first_overflow,
)
from repro.engine.context import AnalysisContext, clear_context_cache
from repro.kernel import SCALE_CAP, DemandKernel
from repro.model.components import DemandComponent, as_components
from repro.model.numeric import to_exact


def _mixed_components():
    return as_components(
        [
            DemandComponent(wcet=Fraction(1, 3), first_deadline=Fraction(5, 2), period=Fraction(7, 3)),
            DemandComponent(wcet=2, first_deadline=4, period=7),
            DemandComponent(wcet=1, first_deadline=3),  # one-shot
            DemandComponent(wcet=0.25, first_deadline=1.5, period=6.5),
            DemandComponent(wcet=1, first_deadline=4, period=9),  # coincident d0
        ]
    )


def _huge_scale_components():
    # Pairwise-coprime large denominators force the LCM past SCALE_CAP.
    primes = [(1 << 89) - 1, (1 << 107) - 1, (1 << 127) - 1]
    return as_components(
        [
            DemandComponent(
                wcet=Fraction(1, p), first_deadline=Fraction(4, p) + i, period=3 + i
            )
            for i, p in enumerate(primes)
        ]
        + [DemandComponent(wcet=1, first_deadline=5, period=8)]
    )


class TestCompilation:
    def test_integer_system_scale_one(self):
        kernel = DemandKernel(as_components([DemandComponent(1, 4, 9)]))
        assert kernel.scale == 1
        assert kernel.d0s == (4,) and kernel.periods == (9,) and kernel.wcets == (1,)

    def test_rational_system_integerizes(self):
        kernel = DemandKernel(_mixed_components())
        assert kernel.scale == 12
        assert all(isinstance(v, int) for v in kernel.d0s + kernel.periods + kernel.wcets)

    def test_one_shot_period_sentinel(self):
        kernel = DemandKernel(as_components([DemandComponent(1, 3)]))
        assert kernel.periods == (0,)
        assert kernel.rates == (Fraction(0),)

    def test_scale_cap_falls_back_to_exact_path(self):
        kernel = DemandKernel(_huge_scale_components())
        assert kernel.scale is None

    def test_empty_system(self):
        kernel = DemandKernel(())
        assert kernel.n == 0
        assert kernel.dbf(100) == 0
        assert kernel.first_overflow(100) == (None, None, 0)
        assert kernel.prev_deadline(100) is None
        assert kernel.min_d0_scaled is None

    def test_rates_match_component_utilizations(self):
        comps = _mixed_components()
        kernel = DemandKernel(comps)
        assert kernel.rates == tuple(Fraction(c.utilization) for c in comps)


@pytest.mark.parametrize("factory", [_mixed_components, _huge_scale_components])
class TestPrimitivesMatchReference:
    def test_dbf(self, factory):
        comps = factory()
        kernel = DemandKernel(comps)
        probes = [1, Fraction(5, 2), 3, Fraction(10, 3), 7.25, 40, 1000]
        for t in probes:
            assert kernel.dbf(t) == reference_dbf(comps, t)
        assert kernel.dbf_batch(probes) == [reference_dbf(comps, t) for t in probes]

    def test_demand_profile(self, factory):
        comps = factory()
        kernel = DemandKernel(comps)
        for bound in (10, Fraction(77, 2), 100):
            assert kernel.demand_profile(bound) == reference_profile(comps, bound)

    def test_first_overflow(self, factory):
        comps = factory()
        kernel = DemandKernel(comps)
        for bound in (10, Fraction(77, 2), 100):
            interval, demand, iterations = kernel.first_overflow(bound)
            reference = reference_first_overflow(comps, bound)
            if reference is None:
                assert interval is None and demand is None
                assert iterations == len(reference_profile(comps, bound))
            else:
                assert (interval, demand) == reference

    def test_prev_deadline_and_walker(self, factory):
        comps = factory()
        kernel = DemandKernel(comps)
        walker = kernel.backward_walker()
        limit = to_exact(120)
        while True:
            expected = _brute_prev(comps, limit)
            assert kernel.prev_deadline(limit) == expected
            assert walker.prev(limit) == expected
            if expected is None:
                break
            limit = expected

    def test_best_ratio(self, factory):
        comps = factory()
        kernel = DemandKernel(comps)
        horizon = 60
        expected = Fraction(1, 1000)
        for interval, demand in reference_profile(comps, horizon):
            ratio = Fraction(demand) / Fraction(interval)
            if ratio > expected:
                expected = ratio
        assert kernel.best_ratio(horizon, Fraction(1, 1000)) == expected

    def test_count_steps(self, factory):
        comps = factory()
        kernel = DemandKernel(comps)
        for bound in (10, Fraction(77, 2), 100):
            expected = sum(c.jobs_up_to(bound) for c in comps)
            assert kernel.count_steps(bound) == expected


def _brute_prev(comps, limit):
    best = None
    for c in comps:
        if c.first_deadline >= limit:
            continue
        if c.period is None:
            candidate = c.first_deadline
        else:
            steps = (limit - c.first_deadline) // c.period
            candidate = c.first_deadline + int(steps) * c.period
            if candidate >= limit:
                candidate -= c.period
        if best is None or candidate > best:
            best = candidate
    return best


class TestWalkerStrideCache:
    def test_descending_limits_including_off_grid(self):
        comps = _mixed_components()
        kernel = DemandKernel(comps)
        walker = kernel.backward_walker()
        # A QPA-like descent: deadline hops interleaved with off-grid
        # jumps (what `t = dbf(t)` produces).
        limits = [Fraction(199, 2), 80, Fraction(201, 4), 33, 32.75, 7, Fraction(5, 2)]
        for limit in limits:
            assert walker.prev(limit) == _brute_prev(comps, to_exact(limit))

    def test_increasing_limit_rejected(self):
        kernel = DemandKernel(_mixed_components())
        walker = kernel.backward_walker()
        walker.prev(10)
        with pytest.raises(ValueError, match="non-increasing"):
            walker.prev(50)

    def test_exhausts_to_none(self):
        comps = as_components([DemandComponent(1, 2, 5), DemandComponent(1, 3)])
        kernel = DemandKernel(comps)
        walker = kernel.backward_walker()
        seen = []
        limit = to_exact(20)
        while True:
            limit = walker.prev(limit)
            if limit is None:
                break
            seen.append(limit)
        assert seen == [17, 12, 7, 3, 2]


class TestContextIntegration:
    def test_kernel_cached_on_context(self):
        clear_context_cache()
        ctx = AnalysisContext.of([DemandComponent(1, 4, 9)])
        assert ctx.kernel() is ctx.kernel()
        # Same fingerprint -> same context -> same compiled kernel.
        again = AnalysisContext.of([DemandComponent(1, 4, 9)])
        assert again is ctx and again.kernel() is ctx.kernel()

    def test_context_kernel_dbf_matches_reference(self):
        clear_context_cache()
        comps = _mixed_components()
        ctx = AnalysisContext.of(comps)
        probes = [1, 3, Fraction(10, 3), 50]
        assert ctx.kernel().dbf_batch(probes) == [ctx.dbf(t) for t in probes]
        assert ctx.dbf(50) == reference_dbf(comps, 50)

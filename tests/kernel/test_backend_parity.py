"""Randomized backend parity: numpy vs pure-python vs pre-kernel loops.

The execution-backend seam (PR 6) promises that *which backend runs* is
unobservable in results: verdicts, witnesses, iteration counts, bulk
probes and ratio scans must be bit-identical across

* the numpy vectorized backend (when numpy is importable),
* the pure-python reference backend, and
* the pre-kernel component-based walks kept verbatim in
  ``reference_walks.py``.

The population mixes ``int`` / ``float`` / ``Fraction`` parameters,
one-shot components and forced-coincident deadlines, plus adversarial
sets that must *decline* vectorization and fall back bit-exactly:
near-``SCALE_CAP`` rationals (no integer grid, exact-`Fraction` path)
and near-int64-overflow magnitudes (inside the integer grid but past
the backend's headroom cap).

Without numpy the module still runs: the python-vs-reference half
executes and every numpy-specific assertion skips.
"""

import random
from fractions import Fraction

import pytest

from repro.analysis.bounds import BoundMethod
from repro.analysis.processor_demand import processor_demand_test
from repro.engine import analyze, processor_demand_many
from repro.engine.context import AnalysisContext, clear_context_cache
from repro.kernel import (
    SCALE_CAP,
    BackendUnsupported,
    DemandKernel,
    IncrementalKernel,
    KernelBackend,
    PurePythonBackend,
    analyze_many,
    available_backends,
    backend_info,
    get_backend,
    reset_backend_stats,
    set_backend,
)
from repro.model.components import DemandComponent, as_components

from .reference_walks import reference_processor_demand, reference_qpa

SET_COUNT = 60

HAS_NUMPY = "numpy" in available_backends()
needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")

BACKENDS = ("python", "numpy") if HAS_NUMPY else ("python",)


@pytest.fixture(autouse=True)
def _restore_backend():
    """Leave the process-global backend selection as we found it."""
    yield
    set_backend("auto")
    reset_backend_stats()


# ----------------------------------------------------------------------
# Population
# ----------------------------------------------------------------------


def _random_value(rng: random.Random, lo: int, hi: int):
    kind = rng.randrange(3)
    base = rng.randint(lo, hi)
    if kind == 0:
        return base
    if kind == 1:
        return base + rng.choice([0.0, 0.25, 0.5, 0.75])
    return base + Fraction(rng.randint(0, 11), rng.choice([2, 3, 4, 5, 6, 7, 12]))


def _random_components(rng: random.Random):
    n = rng.randint(1, 12)
    comps = []
    for _ in range(n):
        period = _random_value(rng, 6, 60)
        wcet = _random_value(rng, 1, 4)
        deadline = _random_value(rng, 2, 50)
        if rng.random() < 0.2:
            comps.append(DemandComponent(wcet=wcet, first_deadline=deadline))
        else:
            comps.append(
                DemandComponent(wcet=wcet, first_deadline=deadline, period=period)
            )
    if len(comps) >= 2 and rng.random() < 0.5:
        first = comps[0]
        comps.append(
            DemandComponent(
                wcet=1,
                first_deadline=first.first_deadline,
                period=comps[-1].period,
            )
        )
    return as_components(comps)


def _population():
    rng = random.Random(20260808)
    return [_random_components(rng) for _ in range(SET_COUNT)]


_POPULATION = _population()


def _near_scale_cap_components():
    """Denominator LCM past SCALE_CAP: the kernel itself runs exact."""
    primes = [10**9 + 7, 10**9 + 9, 10**9 + 21, 10**9 + 33, 10**9 + 87]
    comps = [
        DemandComponent(
            wcet=Fraction(1, p), first_deadline=3 + Fraction(1, p), period=7
        )
        for p in primes
    ]
    kernel = DemandKernel(as_components(comps))
    assert kernel.scale is None, "population must exercise the exact path"
    return as_components(comps)


def _near_int64_components():
    """Integer grid, but magnitudes past the numpy backend's headroom."""
    big = 1 << 62
    return as_components(
        [
            DemandComponent(wcet=big, first_deadline=5, period=17),
            DemandComponent(wcet=3, first_deadline=big + 1, period=big),
            DemandComponent(wcet=2, first_deadline=4, period=9),
        ]
    )


# ----------------------------------------------------------------------
# Selection API
# ----------------------------------------------------------------------


def test_backend_selection_api():
    python = set_backend("python")
    assert python.name == "python" and get_backend() is python
    auto = set_backend("auto")
    assert auto.name in ("python", "numpy")
    assert set_backend(None).name == auto.name
    instance = PurePythonBackend()
    assert set_backend(instance) is instance
    with pytest.raises(ValueError, match="unknown kernel backend"):
        set_backend("cython")
    info = backend_info()
    assert set(info) == {"active", "available", "calls", "fallbacks"}
    assert "python" in info["available"]


def test_auto_selection_prefers_numpy_when_available():
    selected = set_backend("auto")
    if HAS_NUMPY:
        assert selected.name == "numpy"
    else:
        assert selected.name == "python"
        with pytest.raises(ValueError, match="fast"):
            set_backend("numpy")


def test_abstract_backend_declines_everything():
    kernel = DemandKernel(_POPULATION[0])
    backend = KernelBackend()
    with pytest.raises(BackendUnsupported):
        backend.dbf_batch_scaled(kernel, [0])
    with pytest.raises(BackendUnsupported):
        backend.first_overflow_scaled(kernel, 10)
    with pytest.raises(BackendUnsupported):
        backend.qpa_scaled(kernel, 10)
    with pytest.raises(BackendUnsupported):
        backend.analyze_many([(kernel, 10)])


def test_dispatch_counters_track_calls_and_fallbacks():
    set_backend("python")
    reset_backend_stats()
    kernel = DemandKernel(_POPULATION[0])
    kernel.dbf_batch([5, 10])
    kernel.first_overflow(50)
    info = backend_info()
    assert info["calls"] == 2 and info["fallbacks"] == 0

    class _Refusing(KernelBackend):
        name = "refusing"

    set_backend(_Refusing())
    reset_backend_stats()
    kernel.dbf_batch([5, 10])
    info = backend_info()
    assert info["calls"] == 1 and info["fallbacks"] == 1


# ----------------------------------------------------------------------
# Primitive + registry parity across backends
# ----------------------------------------------------------------------


def _primitive_snapshot(comps, bound, probes):
    kernel = DemandKernel(comps)
    return (
        kernel.dbf_batch(probes),
        kernel.first_overflow(bound),
        kernel.qpa(bound),
        kernel.best_ratio(bound, Fraction(1, 7)),
        kernel.count_steps(bound),
    )


@pytest.mark.parametrize("index", range(SET_COUNT))
def test_backend_primitive_parity(index):
    comps = _POPULATION[index]
    rng = random.Random(index)
    bound = 90
    probes = [rng.randint(0, 120) for _ in range(12)]
    probes += [_random_value(rng, 1, 120) for _ in range(4)]
    set_backend("python")
    expected = _primitive_snapshot(comps, bound, probes)
    for name in BACKENDS[1:]:
        set_backend(name)
        assert _primitive_snapshot(comps, bound, probes) == expected, (index, name)


@needs_numpy
@pytest.mark.parametrize("index", range(0, SET_COUNT, 3))
def test_numpy_registry_results_match_prekernel_references(index):
    comps = _POPULATION[index]
    set_backend("numpy")
    clear_context_cache()
    ctx = AnalysisContext.of(comps)
    if ctx.utilization > 1:
        return  # preflight short-circuits before any walk

    pda = analyze(ctx, test="processor-demand")
    verdict, w_interval, w_demand, its = reference_processor_demand(
        ctx, ctx.bound(BoundMethod.BARUAH)
    )
    assert pda.verdict.value == verdict
    assert pda.iterations == its and pda.intervals_checked == its
    if w_interval is not None:
        assert pda.witness.interval == w_interval
        assert pda.witness.demand == w_demand
        assert pda.witness.exact
    else:
        assert pda.witness is None

    qpa = analyze(ctx, test="qpa")
    verdict, w_interval, w_demand, its = reference_qpa(
        ctx, ctx.bound(BoundMethod.BEST)
    )
    assert qpa.verdict.value == verdict
    assert qpa.iterations == its
    if w_interval is not None:
        assert qpa.witness.interval == w_interval
        assert qpa.witness.demand == w_demand
    else:
        assert qpa.witness is None


# ----------------------------------------------------------------------
# Fallback envelopes: exact-path and near-int64 sets
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "comps_factory, bound",
    [(_near_scale_cap_components, 40), (_near_int64_components, 200)],
    ids=["near-scale-cap", "near-int64"],
)
def test_fallback_sets_stay_bit_exact(comps_factory, bound):
    comps = comps_factory()
    probes = [1, bound // 2, bound, bound + 1]
    set_backend("python")
    expected = _primitive_snapshot(comps, bound, probes)
    if not HAS_NUMPY:
        return
    set_backend("numpy")
    reset_backend_stats()
    assert _primitive_snapshot(comps, bound, probes) == expected
    info = backend_info()
    assert info["fallbacks"] > 0, "these sets must decline vectorization"
    assert info["fallbacks"] == info["calls"]


@needs_numpy
def test_mixed_campaign_partially_vectorizes():
    """analyze_many with supported and unsupported kernels interleaved."""
    systems = [_POPULATION[0], _near_int64_components(), _POPULATION[1]]
    bound = 200
    set_backend("python")
    kernels = [DemandKernel(c) for c in systems]
    expected = analyze_many(
        [(k, k.inclusive_scaled(bound)) for k in kernels]
    )
    set_backend("numpy")
    kernels = [DemandKernel(c) for c in systems]
    assert (
        analyze_many([(k, k.inclusive_scaled(bound)) for k in kernels])
        == expected
    )


# ----------------------------------------------------------------------
# Campaign primitives
# ----------------------------------------------------------------------


def test_processor_demand_many_matches_sequential():
    sources = [_POPULATION[i] for i in range(0, 24, 2)]
    expected = [processor_demand_test(s) for s in sources]
    for name in BACKENDS:
        set_backend(name)
        clear_context_cache()
        assert processor_demand_many(sources) == expected, name


def test_processor_demand_many_empty_and_single():
    assert processor_demand_many([]) == []
    source = _POPULATION[2]
    assert processor_demand_many([source]) == [processor_demand_test(source)]


def test_analyze_many_iteration_counts_match_per_kernel_walks():
    bound = 90
    for name in BACKENDS:
        set_backend(name)
        kernels = [DemandKernel(c) for c in _POPULATION[:20]]
        pairs = [(k, k.inclusive_scaled(bound)) for k in kernels]
        batched = analyze_many(pairs)
        singly = [k.first_overflow_scaled(b) for k, b in pairs]
        assert batched == singly, name


# ----------------------------------------------------------------------
# Incremental kernels: the per-kernel array cache must invalidate
# ----------------------------------------------------------------------


@needs_numpy
def test_incremental_mutation_invalidates_vectorized_cache():
    set_backend("numpy")
    live = IncrementalKernel(_POPULATION[4])
    probes = list(range(0, 80, 7))
    live.dbf_batch(probes)  # builds the numpy array cache

    extra = DemandComponent(wcet=2, first_deadline=9, period=13)
    live.add(extra)
    fresh = DemandKernel(as_components(list(_POPULATION[4]) + [extra]))
    set_backend("python")
    expected = (fresh.dbf_batch(probes), fresh.first_overflow(80), fresh.qpa(80))
    set_backend("numpy")
    assert (live.dbf_batch(probes), live.first_overflow(80), live.qpa(80)) == expected

    live.remove_span(live.n - 1)
    fresh = DemandKernel(_POPULATION[4])
    set_backend("python")
    expected = (fresh.dbf_batch(probes), fresh.first_overflow(80), fresh.qpa(80))
    set_backend("numpy")
    assert (live.dbf_batch(probes), live.first_overflow(80), live.qpa(80)) == expected

"""Randomized kernel ↔ component-path parity (the PR's acceptance net).

Over 200+ generated systems — mixed ``int`` / ``float`` / ``Fraction``
parameters, one-shot components, deliberately coincident deadlines —
the compiled kernel must reproduce the component-based reference
*bit-exactly*:

* ``dbf`` / ``first_overflow`` / ``prev_deadline`` against the
  reference oracles in :mod:`repro.analysis.dbf` and a brute-force
  backward scan;
* full ``FeasibilityResult`` equality (verdict, witness, iteration and
  interval counts, bound) for ``processor-demand`` and ``qpa`` invoked
  through the engine registry, against reference re-implementations of
  the pre-kernel walks kept verbatim in this file;
* verdict / iteration / interval / revision / witness equality for the
  rewired superposition and All-Approximated walks against their
  pre-kernel component-based loops (also kept verbatim below).
"""

import random
from collections import deque
from fractions import Fraction

import pytest

from repro.analysis.bounds import BoundMethod
from repro.analysis.dbf import dbf as reference_dbf, dbf_points
from repro.analysis.intervals import IntervalQueue
from repro.analysis.qpa import largest_deadline_below
from repro.core import all_approx_test, superposition_test
from repro.engine import analyze
from repro.engine.context import AnalysisContext, clear_context_cache
from repro.kernel import DemandKernel
from repro.model.components import DemandComponent, as_components

from .reference_walks import reference_processor_demand, reference_qpa

SET_COUNT = 220


def _random_value(rng: random.Random, lo: int, hi: int):
    """A value in [lo, hi] as int, dyadic float, or small Fraction."""
    kind = rng.randrange(3)
    base = rng.randint(lo, hi)
    if kind == 0:
        return base
    if kind == 1:
        return base + rng.choice([0.0, 0.25, 0.5, 0.75])
    return base + Fraction(rng.randint(0, 11), rng.choice([2, 3, 4, 5, 6, 7, 12]))


def _random_components(rng: random.Random):
    n = rng.randint(1, 12)
    comps = []
    for _ in range(n):
        period = _random_value(rng, 6, 60)
        wcet = _random_value(rng, 1, 4)
        deadline = _random_value(rng, 2, 50)
        if rng.random() < 0.2:
            comps.append(DemandComponent(wcet=wcet, first_deadline=deadline))
        else:
            comps.append(
                DemandComponent(wcet=wcet, first_deadline=deadline, period=period)
            )
    # Force coincident deadlines in roughly half the sets.
    if len(comps) >= 2 and rng.random() < 0.5:
        first = comps[0]
        comps.append(
            DemandComponent(
                wcet=1,
                first_deadline=first.first_deadline,
                period=comps[-1].period,
            )
        )
    return as_components(comps)


def _population():
    rng = random.Random(20050815)
    return [_random_components(rng) for _ in range(SET_COUNT)]


_POPULATION = _population()


# ----------------------------------------------------------------------
# Reference implementations of the superposition-family walks (the
# processor-demand / QPA references live in reference_walks.py, shared
# with the speedup benchmark).
# ----------------------------------------------------------------------


def reference_superposition(ctx, level, bound):
    """(verdict, witness interval, witness demand, iterations, intervals)."""
    components = ctx.components
    queue = IntervalQueue()
    jobs_queued = [0] * len(components)
    for idx, comp in enumerate(components):
        if comp.first_deadline <= bound:
            queue.push(comp.first_deadline, idx)
            jobs_queued[idx] = 1
    exact_demand = 0
    u_ready = Fraction(0)
    approx_base = Fraction(0)
    iterations = 0
    intervals = 0
    last_interval = None
    while queue:
        interval, idx = queue.pop()
        comp = components[idx]
        exact_demand += comp.wcet
        if jobs_queued[idx] < level:
            nxt = comp.next_deadline_after(interval)
            if nxt is not None and nxt <= bound:
                queue.push(nxt, idx)
                jobs_queued[idx] += 1
        else:
            rate = Fraction(comp.utilization)
            if rate:
                u_ready += rate
                approx_base += rate * Fraction(interval)
        iterations += 1
        if last_interval != interval:
            intervals += 1
            last_interval = interval
        value = exact_demand + u_ready * Fraction(interval) - approx_base
        if value > interval:
            return ("unknown", interval, value, iterations, intervals)
    return ("feasible", None, None, iterations, intervals)


def reference_all_approx(ctx, policy):
    """(verdict, witness interval, witness demand, iterations, intervals,
    revisions)."""
    components = ctx.components
    u = ctx.utilization
    backstop = ctx.busy_period() if u == 1 else None
    n = len(components)
    queue = IntervalQueue()
    jobs_counted = [0] * n
    approx_at = [None] * n
    approx_fifo = deque()
    for idx, comp in enumerate(components):
        queue.push(comp.first_deadline, idx)
    exact_demand = 0
    u_ready = Fraction(0)
    approx_base = Fraction(0)
    iterations = 0
    intervals = 0
    revisions = 0
    last_interval = None

    def pick(interval):
        if policy == "fifo":
            return approx_fifo.popleft()
        if policy == "largest_error":
            best = max(
                approx_fifo,
                key=lambda j: components[j].linear_envelope(interval)
                - components[j].dbf(interval),
            )
        else:
            best = max(approx_fifo, key=lambda j: Fraction(components[j].utilization))
        approx_fifo.remove(best)
        return best

    while queue:
        interval, idx = queue.pop()
        if backstop is not None and interval > backstop:
            break
        comp = components[idx]
        exact_demand += comp.wcet
        jobs_counted[idx] += 1
        iterations += 1
        if last_interval != interval:
            intervals += 1
            last_interval = interval
        value = exact_demand + u_ready * Fraction(interval) - approx_base
        while value > interval:
            if not approx_fifo:
                return (
                    "infeasible",
                    interval,
                    ctx.dbf(interval),
                    iterations,
                    intervals,
                    revisions,
                )
            j = pick(interval)
            comp_j = components[j]
            rate = Fraction(comp_j.utilization)
            u_ready -= rate
            approx_base -= rate * Fraction(approx_at[j])
            approx_at[j] = None
            jobs_now = comp_j.jobs_up_to(interval)
            exact_demand += (jobs_now - jobs_counted[j]) * comp_j.wcet
            jobs_counted[j] = jobs_now
            nxt = comp_j.next_deadline_after(interval)
            if nxt is not None:
                queue.push(nxt, j)
            revisions += 1
            iterations += 1
            value = exact_demand + u_ready * Fraction(interval) - approx_base
        if comp.period is not None:
            rate = Fraction(comp.utilization)
            u_ready += rate
            approx_base += rate * Fraction(interval)
            approx_at[idx] = interval
            approx_fifo.append(idx)
    return ("feasible", None, None, iterations, intervals, revisions)


def _sample_probes(rng, comps, bound):
    probes = [bound, bound + 1]
    for c in comps[:4]:
        probes.append(c.first_deadline)
        if c.period is not None:
            probes.append(c.first_deadline + 2 * c.period)
    probes.extend(_random_value(rng, 1, 80) for _ in range(4))
    return probes


def test_population_is_diverse():
    assert len(_POPULATION) >= 200
    assert any(any(c.period is None for c in comps) for comps in _POPULATION)
    assert any(
        len({c.first_deadline for c in comps}) < len(comps) for comps in _POPULATION
    )
    scales = {DemandKernel(comps).scale for comps in _POPULATION}
    assert 1 in scales and len(scales) > 3


@pytest.mark.parametrize("index", range(SET_COUNT))
def test_primitives_and_registry_parity(index):
    comps = _POPULATION[index]
    rng = random.Random(index)
    clear_context_cache()
    ctx = AnalysisContext.of(comps)
    kernel = ctx.kernel()

    bound = ctx.bound(BoundMethod.BEST) if ctx.utilization <= 1 else 120

    # Point primitives against the component oracles.
    probes = _sample_probes(rng, comps, bound)
    assert kernel.dbf_batch(probes) == [reference_dbf(comps, t) for t in probes]
    for t in probes[:5]:
        assert kernel.dbf(t) == reference_dbf(comps, t)

    # Forward walk: first_overflow against the incremental point stream.
    expected_overflow = None
    expected_steps = 0
    for interval, demand in dbf_points(comps, bound):
        expected_steps += 1
        if demand > interval:
            expected_overflow = (interval, demand)
            break
    interval, demand, iterations = kernel.first_overflow(bound)
    assert iterations == expected_steps
    if expected_overflow is None:
        assert interval is None and demand is None
    else:
        assert (interval, demand) == expected_overflow

    # Backward walk: the stride-caching walker against the full rescan.
    walker = kernel.backward_walker()
    limit = bound + 1
    for _ in range(30):
        expected = largest_deadline_below(comps, limit)
        assert walker.prev(limit) == expected
        assert kernel.prev_deadline(limit) == expected
        if expected is None:
            break
        limit = expected

    if ctx.utilization > 1:
        return  # both tests short-circuit in preflight; nothing to compare

    # Registry-level parity: verdict, witness, iterations, bounds.
    pda = analyze(ctx, test="processor-demand")
    verdict, w_interval, w_demand, its = reference_processor_demand(
        ctx, ctx.bound(BoundMethod.BARUAH)
    )
    assert pda.verdict.value == verdict
    assert pda.iterations == its and pda.intervals_checked == its
    if w_interval is not None:
        assert pda.witness is not None
        assert pda.witness.interval == w_interval
        assert pda.witness.demand == w_demand
        assert pda.witness.exact
    else:
        assert pda.witness is None

    qpa = analyze(ctx, test="qpa")
    verdict, w_interval, w_demand, its = reference_qpa(
        ctx, ctx.bound(BoundMethod.BEST)
    )
    assert qpa.verdict.value == verdict
    assert qpa.iterations == its
    if w_interval is not None:
        assert qpa.witness is not None
        assert qpa.witness.interval == w_interval
        assert qpa.witness.demand == w_demand
    else:
        assert qpa.witness is None


@pytest.mark.parametrize("index", range(0, SET_COUNT, 2))
def test_superposition_family_parity(index):
    """The rewired superposition / All-Approximated walks vs their
    pre-kernel component loops: verdicts, counts, witnesses."""
    comps = _POPULATION[index]
    clear_context_cache()
    ctx = AnalysisContext.of(comps)
    if ctx.utilization > 1:
        return  # preflight short-circuits before any walk

    for level in (1, 3):
        result = superposition_test(ctx, level)
        verdict, w_interval, w_demand, its, ivs = reference_superposition(
            ctx, level, ctx.bound(BoundMethod.SUPERPOSITION)
        )
        assert result.verdict.value == verdict, (index, level)
        assert (result.iterations, result.intervals_checked) == (its, ivs)
        if w_interval is not None:
            assert result.witness.interval == w_interval
            assert result.witness.demand == w_demand
        else:
            assert result.witness is None

    for policy in ("largest_error", "fifo", "largest_utilization"):
        result = all_approx_test(ctx, revision_policy=policy)
        verdict, w_interval, w_demand, its, ivs, revs = reference_all_approx(
            ctx, policy
        )
        assert result.verdict.value == verdict, (index, policy)
        assert (result.iterations, result.intervals_checked, result.revisions) == (
            its,
            ivs,
            revs,
        )
        if w_interval is not None:
            assert result.witness.interval == w_interval
            assert result.witness.demand == w_demand
        else:
            assert result.witness is None

"""Incremental kernel: add/remove must match a fresh compile exactly."""

import random
from fractions import Fraction

import pytest

from repro.kernel import DemandKernel, IncrementalKernel
from repro.model.components import DemandComponent


def _random_component(rng: random.Random) -> DemandComponent:
    flavour = rng.randrange(4)
    if flavour == 0:
        period = rng.randint(2, 40)
        return DemandComponent(
            wcet=rng.randint(1, period),
            first_deadline=rng.randint(1, period + 5),
            period=period,
        )
    if flavour == 1:
        period = rng.uniform(2, 40)
        return DemandComponent(
            wcet=rng.uniform(0.1, period),
            first_deadline=rng.uniform(0.5, period + 5),
            period=period,
        )
    if flavour == 2:
        period = Fraction(rng.randint(4, 200), rng.randint(1, 9))
        return DemandComponent(
            wcet=period * Fraction(rng.randint(1, 80), 100),
            first_deadline=period * Fraction(rng.randint(40, 130), 100),
            period=period,
        )
    return DemandComponent(  # one-shot
        wcet=rng.randint(1, 9), first_deadline=rng.randint(1, 30)
    )


def _assert_equivalent(incremental: IncrementalKernel, components) -> None:
    """Every observable primitive must match a freshly compiled kernel.

    The incremental kernel may sit on a *larger* grid (the scale never
    shrinks on removal), so raw arrays are compared after unscaling and
    the primitives through their original-unit interfaces.
    """
    fresh = DemandKernel(components)
    assert incremental.n == fresh.n
    assert [incremental.unscale(v) for v in incremental.d0s] == [
        fresh.unscale(v) for v in fresh.d0s
    ]
    assert [incremental.unscale(v) for v in incremental.wcets] == [
        fresh.unscale(v) for v in fresh.wcets
    ]
    assert [incremental.unscale(v) for v in incremental.periods] == [
        fresh.unscale(v) for v in fresh.periods
    ]
    assert list(incremental.rates) == list(fresh.rates)
    horizon = 200
    assert incremental.dbf_batch(range(1, 40)) == fresh.dbf_batch(range(1, 40))
    assert incremental.demand_profile(horizon) == fresh.demand_profile(horizon)
    assert incremental.first_overflow(horizon) == fresh.first_overflow(horizon)
    assert incremental.prev_deadline(horizon) == fresh.prev_deadline(horizon)
    assert incremental.count_steps(horizon) == fresh.count_steps(horizon)


class TestIncrementalKernel:
    def test_add_matches_fresh_compile(self, rng):
        components = []
        kernel = IncrementalKernel(())
        for _ in range(25):
            component = _random_component(rng)
            components.append(component)
            index = kernel.add(component)
            assert index == len(components) - 1
        _assert_equivalent(kernel, components)

    def test_remove_span_matches_fresh_compile(self, rng):
        components = [_random_component(rng) for _ in range(20)]
        kernel = IncrementalKernel(components)
        while components:
            start = rng.randrange(len(components))
            count = rng.randint(1, min(3, len(components) - start))
            kernel.remove_span(start, count)
            del components[start : start + count]
            _assert_equivalent(kernel, components)

    def test_interleaved_churn(self, rng):
        components = []
        kernel = IncrementalKernel(())
        for step in range(60):
            if components and rng.random() < 0.45:
                start = rng.randrange(len(components))
                kernel.remove_span(start, 1)
                del components[start]
            else:
                component = _random_component(rng)
                components.append(component)
                kernel.add(component)
            if step % 10 == 9:
                _assert_equivalent(kernel, components)
        _assert_equivalent(kernel, components)

    def test_scale_grows_on_new_denominator(self):
        kernel = IncrementalKernel(
            [DemandComponent(wcet=1, first_deadline=2, period=4)]
        )
        assert kernel.scale == 1
        kernel.add(
            DemandComponent(
                wcet=Fraction(1, 3), first_deadline=Fraction(5, 2), period=3
            )
        )
        assert kernel.scale == 6
        # Existing entries were rescaled in place.
        assert kernel.d0s[0] == 12 and kernel.wcets[0] == 6

    def test_scale_does_not_shrink_on_removal(self):
        kernel = IncrementalKernel(
            [
                DemandComponent(wcet=1, first_deadline=2, period=4),
                DemandComponent(
                    wcet=Fraction(1, 3), first_deadline=Fraction(5, 2), period=3
                ),
            ]
        )
        assert kernel.scale == 6
        kernel.remove_span(1, 1)
        assert kernel.scale == 6  # still a valid (common-multiple) grid
        _assert_equivalent(
            kernel, [DemandComponent(wcet=1, first_deadline=2, period=4)]
        )

    def test_degrades_to_exact_fallback_past_scale_cap(self):
        primes = [(1 << 89) - 1, (1 << 107) - 1, (1 << 127) - 1]
        kernel = IncrementalKernel(
            [DemandComponent(wcet=1, first_deadline=5, period=8)]
        )
        components = [DemandComponent(wcet=1, first_deadline=5, period=8)]
        for i, p in enumerate(primes):
            component = DemandComponent(
                wcet=Fraction(1, p), first_deadline=Fraction(4, p) + i, period=3 + i
            )
            components.append(component)
            kernel.add(component)
        assert kernel.scale is None
        _assert_equivalent(kernel, components)
        # Mutations keep working on the exact path.
        kernel.remove_span(1, 2)
        del components[1:3]
        _assert_equivalent(kernel, components)

    def test_invalid_span_rejected(self):
        kernel = IncrementalKernel(
            [DemandComponent(wcet=1, first_deadline=2, period=4)]
        )
        with pytest.raises(ValueError):
            kernel.remove_span(0, 2)
        with pytest.raises(ValueError):
            kernel.remove_span(-1, 1)
        with pytest.raises(ValueError):
            kernel.remove_span(0, 0)

"""Pre-kernel reference walks, kept verbatim in ONE place.

These are the component-based loops the interval-driven tests ran
before the compiled-kernel layer (``IntervalQueue`` over
``DemandComponent`` method calls; per-step ``largest_deadline_below``
rescans).  Both the randomized parity suite
(``tests/kernel/test_parity_random.py``) and the speedup benchmark
(``benchmarks/test_kernel_micro.py``) consume this module, so the
parity oracle and the benchmark baseline can never drift apart.

One deliberate difference from the historical code: the QPA reference
sums component ``dbf`` directly instead of calling the memoizing
``ctx.dbf``.  Within one backward walk the probed instants strictly
decrease, so the memo never hits on a first analysis — this is what a
pre-kernel first run of a distinct set paid, minus the memo-insertion
overhead (which flatters the reference).
"""

from repro.analysis.intervals import IntervalQueue
from repro.analysis.qpa import largest_deadline_below

__all__ = ["reference_processor_demand", "reference_qpa"]


def reference_processor_demand(ctx, bound):
    """(verdict, witness interval, witness demand, iterations)."""
    components = ctx.components
    queue = IntervalQueue()
    for idx, comp in enumerate(components):
        if comp.first_deadline <= bound:
            queue.push(comp.first_deadline, idx)
    demand = 0
    iterations = 0
    while queue:
        interval, idx = queue.pop()
        demand += components[idx].wcet
        nxt = components[idx].next_deadline_after(interval)
        if nxt is not None and nxt <= bound:
            queue.push(nxt, idx)
        head = queue.peek()
        if head is not None and head[0] == interval:
            continue
        iterations += 1
        if demand > interval:
            return ("infeasible", interval, demand, iterations)
    return ("feasible", None, None, iterations)


def reference_qpa(ctx, bound):
    """(verdict, witness interval, witness demand, iterations)."""
    components = ctx.components
    min_deadline = ctx.min_first_deadline
    t = largest_deadline_below(components, bound + 1)
    if t is None:
        return ("feasible", None, None, 0)
    iterations = 0
    while True:
        demand = sum((c.dbf(t) for c in components), 0)
        iterations += 1
        if demand > t:
            return ("infeasible", t, demand, iterations)
        if demand <= min_deadline:
            return ("feasible", None, None, iterations)
        if demand < t:
            t = demand
        else:
            previous = largest_deadline_below(components, t)
            if previous is None:
                return ("feasible", None, None, iterations)
            t = previous

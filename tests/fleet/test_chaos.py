"""Chaos tests: campaigns must complete bit-identically to the
sequential ``BatchRunner`` oracle under every injected fault.

Faults are deterministic (:mod:`repro.fleet.faults`) and death
detection is driven explicitly (rewinding ``last_heartbeat`` +
``check_deaths``) so these tests assert exact recovery behaviour
instead of sleeping through heartbeat windows.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.fleet import Coordinator, FaultPlan
from repro.fleet.registry import DEAD
from repro.model.serialization import result_to_dict

from .conftest import campaign_requests, make_tasksets, sequential_docs

CAMPAIGN = 100  # systems per chaos campaign (acceptance floor)


def make_coordinator(**overrides) -> Coordinator:
    options = dict(
        heartbeat_interval=0.2,
        miss_budget=3,
        shard_size=4,
        shard_timeout=30.0,
        retries=3,
        backoff_base=0.01,
        backoff_cap=0.05,
        campaign_timeout=60.0,
        rng=random.Random(0xDEAD),
    )
    options.update(overrides)
    return Coordinator(**options)


def run_and_compare(coordinator: Coordinator, count: int = CAMPAIGN):
    requests = campaign_requests(make_tasksets(count))
    expected = sequential_docs(requests)
    docs = [result_to_dict(r) for r in coordinator.run_campaign(requests)]
    assert docs == expected
    return docs


class TestWorkerCrash:
    def test_crash_mid_campaign_fails_over(self, local_workers):
        crasher = local_workers(
            "crasher", faults=FaultPlan(crash_on_shard=2)
        )
        survivor = local_workers("survivor")
        with make_coordinator() as coord:
            coord.register(crasher.id, crasher.url)
            coord.register(survivor.id, survivor.url)
            run_and_compare(coord)
            assert crasher.crashed.is_set()
            assert coord.workers.get("crasher").state == DEAD
            assert coord.workers.get("survivor").shards_completed >= 1

    def test_whole_fleet_crash_degrades_to_local(self, local_workers):
        crasher = local_workers(
            "crasher", faults=FaultPlan(crash_on_shard=1)
        )
        with make_coordinator() as coord:
            coord.register(crasher.id, crasher.url)
            run_and_compare(coord)
            assert crasher.crashed.is_set()
            assert coord.workers.alive_ids() == []


class TestHeartbeatBlackhole:
    def test_silent_worker_is_declared_dead_and_drained(self, local_workers):
        # The blackholed worker stalls its first shard long enough for
        # the test to declare it dead mid-flight; its queued and
        # in-flight shards must requeue onto the survivor.
        silent = local_workers(
            "silent",
            faults=FaultPlan(
                heartbeat_blackhole_after=0, stall_on_shard=1,
                stall_seconds=8.0,
            ),
        )
        survivor = local_workers("survivor")
        coord = make_coordinator(shard_timeout=20.0)
        try:
            coord.register(silent.id, silent.url)
            coord.register(survivor.id, survivor.url)

            requests = campaign_requests(make_tasksets(CAMPAIGN))
            expected = sequential_docs(requests)
            results: list = []

            def campaign() -> None:
                results.extend(coord.run_campaign(requests))

            thread = threading.Thread(target=campaign, daemon=True)
            thread.start()
            # Wait until the silent worker has a shard in flight...
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if silent.worker.health()["shards_seen"] >= 1:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("silent worker never received a shard")
            # ...then miss every heartbeat in the budget at once.
            info = coord.workers.get("silent")
            info.last_heartbeat = time.monotonic() - 10 * coord.workers.death_timeout
            assert coord.workers.check_deaths() == ["silent"]

            thread.join(timeout=30.0)
            assert not thread.is_alive(), "campaign did not complete"
            assert [result_to_dict(r) for r in results] == expected
            assert coord.workers.get("silent").state == DEAD
            assert coord.workers.get("survivor").shards_completed >= 1
        finally:
            coord.close()


class TestStallAndTimeout:
    def test_stalled_shard_times_out_then_retries(self, local_workers):
        staller = local_workers(
            "staller",
            faults=FaultPlan(stall_on_shard=1, stall_seconds=5.0),
        )
        with make_coordinator(shard_timeout=0.5, shard_size=1000) as coord:
            coord.register(staller.id, staller.url)
            run_and_compare(coord, count=12)
            assert not coord.dead_letters
            info = coord.workers.get("staller")
            assert info.shards_failed >= 1  # the timed-out attempt
            assert info.shards_completed >= 1  # the retry


class TestRetryExhaustion:
    def test_dead_letter_then_local_backstop(self, local_workers):
        always_503 = local_workers(
            "rejector", faults=FaultPlan(reject_503_every=1)
        )
        with make_coordinator(retries=1) as coord:
            coord.register(always_503.id, always_503.url)
            run_and_compare(coord)
            assert coord.dead_letters
            letter = coord.dead_letters[0].snapshot()
            assert letter["worker"] == "rejector"
            assert letter["attempts"] == 2  # initial try + one retry
            assert letter["indices"]
            assert "503" in letter["reason"]
            assert coord.snapshot()["dead_letters"]

    def test_zero_retry_budget_still_completes(self, local_workers):
        always_503 = local_workers(
            "rejector", faults=FaultPlan(reject_503_every=1)
        )
        with make_coordinator(retries=0) as coord:
            coord.register(always_503.id, always_503.url)
            run_and_compare(coord, count=20)
            assert coord.dead_letters


class TestIntermittent503:
    def test_every_other_request_rejected_recovers(self, local_workers):
        flaky = local_workers(
            "flaky", faults=FaultPlan(reject_503_every=2)
        )
        with make_coordinator(retries=5) as coord:
            coord.register(flaky.id, flaky.url)
            run_and_compare(coord)
            info = coord.workers.get("flaky")
            assert info.shards_failed >= 1  # some 503s happened
            assert info.shards_completed >= 1  # and were retried through

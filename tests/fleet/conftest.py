"""Shared helpers for the fleet tests.

The in-process harness runs real ``FleetWorker`` HTTP servers but keeps
registration/heartbeats under test control: workers are registered
directly on the coordinator object and death detection is driven
deterministically (``check_deaths`` after rewinding ``last_heartbeat``)
instead of sleeping through monitor intervals.
"""

from __future__ import annotations

import random
import threading
from typing import List, Optional

import pytest

from repro.engine.batch import AnalysisRequest, BatchRunner
from repro.fleet import FaultPlan, FleetWorker
from repro.model import SporadicTask, TaskSet
from repro.model.serialization import result_to_dict


def make_tasksets(count: int, seed: int = 0xF1EE7) -> List[TaskSet]:
    """Deterministic random campaign of *count* systems."""
    rng = random.Random(seed)
    sets = []
    for _ in range(count):
        n = rng.randint(1, 5)
        tasks = []
        for _ in range(n):
            period = rng.randint(2, 30)
            wcet = rng.randint(1, period)
            deadline = rng.randint(1, period + 5)
            tasks.append(
                SporadicTask(wcet=wcet, deadline=deadline, period=period)
            )
        sets.append(TaskSet(tasks))
    return sets


def campaign_requests(
    sets: List[TaskSet], test: str = "all-approx"
) -> List[AnalysisRequest]:
    return [
        AnalysisRequest(source=ts, test=test, options={}, tag=i)
        for i, ts in enumerate(sets)
    ]


def sequential_docs(requests: List[AnalysisRequest]) -> List[dict]:
    """The bit-identical oracle: sequential BatchRunner, serialized."""
    return [result_to_dict(r) for r in BatchRunner(jobs=1).run(requests)]


class LocalWorker:
    """A ``FleetWorker`` serving HTTP without its client loops.

    Tests register it on the coordinator directly, so no coordinator
    HTTP endpoint (and no heartbeat thread) is needed; ``crash=``
    defaults to a hard in-process death — the HTTP server's sockets are
    torn down so in-flight requests reset, exactly what a SIGKILL looks
    like from the coordinator's side.
    """

    def __init__(
        self,
        worker_id: str,
        faults: Optional[FaultPlan] = None,
        crash: str = "sockets",
    ) -> None:
        self.worker = FleetWorker(
            "http://127.0.0.1:9",  # never contacted: loops are not started
            worker_id=worker_id,
            faults=faults if faults is not None else FaultPlan(),
            crash=self.die if crash == "sockets" else crash,
        )
        self.id = worker_id
        self.crashed = threading.Event()
        self._thread = threading.Thread(
            target=self.worker.httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return self.worker.url

    def die(self) -> None:
        """Simulate ``kill -9``: connections reset, no deregistration."""
        self.crashed.set()
        self.worker.httpd.server_close()
        threading.Thread(target=self.worker.httpd.shutdown, daemon=True).start()

    def close(self) -> None:
        if not self.crashed.is_set():
            self.worker.httpd.shutdown()
            self.worker.httpd.server_close()
        self._thread.join(timeout=5)


@pytest.fixture
def local_workers():
    """Factory fixture: spawn LocalWorkers, close them on teardown."""
    spawned: List[LocalWorker] = []

    def spawn(worker_id: str, **kwargs) -> LocalWorker:
        worker = LocalWorker(worker_id, **kwargs)
        spawned.append(worker)
        return worker

    yield spawn
    for worker in spawned:
        worker.close()

"""The fleet telemetry plane: worker endpoints, scraper, merged store.

Scraping is driven deterministically (``scrape_all()`` on coordinators
that are never ``start()``-ed, so no background sweep interferes) and
death detection follows the chaos-test idiom: rewind ``last_heartbeat``
and call ``check_deaths``.

In-process caveat: every ``LocalWorker`` shares the process-global obs
registry and logs, so two scraped workers return identical state copies.
The sum/bit-identity assertions still hold exactly — they are what the
acceptance criteria demand of ``merge_state`` — and the synthetic-state
unit tests cover genuinely distinct per-worker documents.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.fleet import (
    Coordinator,
    FaultPlan,
    FleetScraper,
    FleetTelemetry,
    FleetWorker,
)
from repro.fleet.telemetry import WORKER_LABEL, _relabel_state
from repro.model.serialization import result_to_dict
from repro.obs.metrics import MetricsRegistry
from repro.service import AnalysisServer, ServiceClient, ServiceError

from .conftest import campaign_requests, make_tasksets, sequential_docs


@pytest.fixture(autouse=True)
def drained_global_logs():
    """Start each test past the global rings' backlog.

    The process-global event/span rings may hold thousands of records
    from earlier test modules — more than one scrape page — which would
    make cursor-equality assertions depend on suite order.  Clearing
    drops the buffered records; the cursors keep advancing.
    """
    obs.event_log().clear()
    obs.span_log().clear()
    yield


def make_coordinator(**overrides) -> Coordinator:
    options = dict(
        heartbeat_interval=0.2,
        miss_budget=3,
        shard_size=4,
        shard_timeout=30.0,
        retries=2,
        backoff_base=0.01,
        backoff_cap=0.05,
        scrape_interval=30.0,  # the tests sweep by hand
        rng=random.Random(0xC0FFEE),
    )
    options.update(overrides)
    return Coordinator(**options)


def http_get(url: str):
    """(status, headers, body) without ServiceClient's retry layer."""
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), err.read()


def series_map(export: dict, family: str) -> dict:
    """``{label-key-tuple: raw value-or-cells}`` for one family."""
    document = export.get(family) or {}
    return {tuple(key): value for key, value in document.get("series") or ()}


# ----------------------------------------------------------------------
# Worker HTTP surface
# ----------------------------------------------------------------------


class TestWorkerEndpoints:
    def test_metrics_text_exposition(self, local_workers):
        worker = local_workers("w-text")
        status, headers, body = http_get(worker.url + "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        text = body.decode("utf-8")
        assert "# TYPE repro_fleet_worker_shards_total counter" in text

    def test_metrics_json_snapshot(self, local_workers):
        worker = local_workers("w-json")
        snapshot = ServiceClient(worker.url).metrics()
        assert "repro_fleet_worker_shards_total" in snapshot

    def test_metrics_state_document(self, local_workers):
        worker = local_workers("w-state")
        state = ServiceClient(worker.url).metrics_state()
        document = state["repro_fleet_worker_shards_total"]
        assert document["kind"] == "counter"
        assert document["labelnames"] == ["outcome"]

    def test_events_and_traces_cursor_pages(self, local_workers):
        worker = local_workers("w-pages")
        client = ServiceClient(worker.url)
        event = obs.emit("fleet-test", "telemetry.ping", n=1)
        assert event is not None
        page = client.events(since=event.seq - 1, limit=10)
        assert page["since"] == event.seq - 1
        assert page["events"][0]["name"] == "telemetry.ping"
        assert page["next"] >= event.seq
        # Draining past the tail returns an empty page, cursor parked.
        drained = client.events(since=page["next"])
        assert drained["events"] == []
        assert drained["next"] == obs.event_log().last_seq
        spans = client.spans(since=0, limit=10)
        assert set(spans) == {"since", "next", "spans"}

    @pytest.mark.parametrize(
        "path",
        [
            "/v1/metrics?format=bogus",
            "/v1/events?since=-1",
            "/v1/events?limit=0",
            "/v1/traces?since=abc",
        ],
    )
    def test_bad_telemetry_queries_are_400(self, local_workers, path):
        worker = local_workers("w-bad")
        status, _, body = http_get(worker.url + path)
        assert status == 400
        assert "error" in json.loads(body)

    def test_scrape_503_fault_rejects_telemetry_gets(self, local_workers):
        worker = local_workers(
            "w-flaky", faults=FaultPlan(scrape_503_every=1)
        )
        status, _, body = http_get(worker.url + "/v1/metrics")
        assert status == 503
        assert "injected scrape 503" in json.loads(body)["error"]
        # Shard-path 503s are a separate knob: health stays clean.
        status, _, _ = http_get(worker.url + "/v1/health")
        assert status == 200

    def test_sampler_interval_validation(self):
        with pytest.raises(ValueError):
            FleetWorker(
                "http://127.0.0.1:9", worker_id="bad", sampler_interval=0.0
            )

    def test_sampler_wired_when_requested(self):
        worker = FleetWorker(
            "http://127.0.0.1:9", worker_id="sampled", sampler_interval=0.5
        )
        try:
            assert worker._sampler is not None
            assert not worker._sampler.running
        finally:
            worker.close()


# ----------------------------------------------------------------------
# The merged store (pure unit tests, synthetic per-worker states)
# ----------------------------------------------------------------------


def demo_registry(route_hits: int, latencies: list) -> MetricsRegistry:
    registry = MetricsRegistry()
    counter = registry.counter(
        "demo_requests_total", "d", labelnames=("route",)
    )
    counter.labels("a").inc(route_hits)
    histogram = registry.histogram("demo_latency_seconds", "d")
    for value in latencies:
        histogram.observe(value)
    return registry


class TestFleetTelemetryStore:
    def test_totals_bit_identical_to_worker_sum(self):
        r1 = demo_registry(3, [0.01, 0.2, 7.0])
        r2 = demo_registry(5, [0.02, 0.2])
        telemetry = FleetTelemetry()
        telemetry.record_metrics("w1", r1.export_state())
        telemetry.record_metrics("w2", r2.export_state())
        merged = telemetry.build_registry().export_state()

        counters = series_map(merged, "demo_requests_total")
        assert counters[("a", "w1")] == 3.0
        assert counters[("a", "w2")] == 5.0
        own = [
            series_map(r.export_state(), "demo_requests_total")[("a",)]
            for r in (r1, r2)
        ]
        assert counters[("a", "w1")] + counters[("a", "w2")] == sum(own)

        cells = series_map(merged, "demo_latency_seconds")
        for worker_id, registry in (("w1", r1), ("w2", r2)):
            expected = series_map(
                registry.export_state(), "demo_latency_seconds"
            )[()]
            assert cells[(worker_id,)] == expected  # cell-exact, sum-exact

    def test_relabel_appends_worker_label(self):
        state = demo_registry(1, []).export_state()
        relabeled = _relabel_state(state, "w9")
        document = relabeled["demo_requests_total"]
        assert document["labelnames"] == ["route", WORKER_LABEL]
        assert document["series"][0][0] == ["a", "w9"]
        # Original document untouched (scraped states are shared refs).
        assert state["demo_requests_total"]["labelnames"] == ["route"]

    def test_record_metrics_replaces_not_accumulates(self):
        state = demo_registry(3, [0.5]).export_state()
        telemetry = FleetTelemetry()
        for _ in range(4):
            telemetry.record_metrics("w1", state)
        merged = telemetry.build_registry().export_state()
        assert series_map(merged, "demo_requests_total")[("a", "w1")] == 3.0
        cells = series_map(merged, "demo_latency_seconds")[("w1",)]
        assert cells["count"] == 1
        view = telemetry.snapshot()["workers"]["w1"]
        assert view["scrapes"] == 4

    def test_ingest_events_drops_replayed_page(self):
        telemetry = FleetTelemetry()
        page = [
            {"seq": 1, "ts": 1.0, "category": "c", "name": "one", "payload": {}},
            {"seq": 2, "ts": 2.0, "category": "c", "name": "two", "payload": {}},
        ]
        assert telemetry.ingest_events("w1", page, next_cursor=2) == 2
        # The exact same page again (a restarted scraper re-pulling
        # with a stale in-thread cursor) must not double-ingest.
        assert telemetry.ingest_events("w1", page, next_cursor=2) == 0
        assert len(telemetry.events) == 2
        events, _ = telemetry.events.since(0)
        assert all(e.payload["worker"] == "w1" for e in events)

    def test_ingest_adopts_smaller_cursor_on_worker_restart(self):
        telemetry = FleetTelemetry()
        telemetry.ingest_events(
            "w1",
            [{"seq": 7, "ts": 1.0, "category": "c", "name": "old", "payload": {}}],
            next_cursor=7,
        )
        # Worker process restarted: its sequence space begins again.
        restarted = [
            {"seq": 1, "ts": 2.0, "category": "c", "name": "fresh", "payload": {}}
        ]
        assert telemetry.ingest_events("w1", restarted, next_cursor=1) == 1
        assert telemetry.cursors("w1") == (1, 0)

    def test_stale_then_expire(self):
        telemetry = FleetTelemetry(stale_ttl=0.05)
        telemetry.record_metrics("w1", demo_registry(1, []).export_state())
        telemetry.mark_stale("w1")
        text = telemetry.exposition()
        assert 'repro_fleet_series_stale{worker="w1"} 1' in text
        assert 'demo_requests_total{route="a",worker="w1"} 1' in text
        assert telemetry.expire() == []  # within the TTL: retained
        time.sleep(0.06)
        assert telemetry.expire() == ["w1"]
        assert telemetry.worker_ids() == []
        assert 'worker="w1"' not in telemetry.exposition()

    def test_successful_scrape_clears_staleness(self):
        telemetry = FleetTelemetry()
        telemetry.record_metrics("w1", {})
        telemetry.mark_stale("w1")
        telemetry.record_metrics("w1", {})
        assert 'repro_fleet_series_stale{worker="w1"} 0' in telemetry.exposition()

    def test_rollups_and_inflight(self):
        telemetry = FleetTelemetry()
        telemetry.record_metrics("w1", {})
        telemetry.record_failure("w2", "boom")
        text = telemetry.exposition(inflight={"w1": 3})
        assert 'repro_fleet_scrapes_total{worker="w1"} 1' in text
        assert 'repro_fleet_scrape_failures_total{worker="w2"} 1' in text
        assert 'repro_fleet_shards_inflight{worker="w1"} 3' in text
        assert "repro_fleet_scraped_workers 2" in text
        assert 'repro_fleet_scrape_age_seconds{worker="w1"}' in text

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.gauge("repro_process_rss_bytes", "rss").set(42 * 1024 * 1024)
        telemetry = FleetTelemetry()
        telemetry.record_metrics("w1", registry.export_state())
        telemetry.record_failure("w1", "blip")
        snapshot = telemetry.snapshot()
        assert snapshot["stale_ttl_seconds"] == 300.0
        view = snapshot["workers"]["w1"]
        assert view["scrapes"] == 1
        assert view["failures"] == 1
        assert view["last_error"] == "blip"
        assert view["rss_bytes"] == 42 * 1024 * 1024
        assert view["last_scrape_age_seconds"] >= 0
        assert not view["stale"]

    def test_stale_ttl_validation(self):
        with pytest.raises(ValueError):
            FleetTelemetry(stale_ttl=0.0)
        with pytest.raises(ValueError):
            FleetScraper(None, FleetTelemetry(), interval=0.0)


# ----------------------------------------------------------------------
# The scraper against live workers
# ----------------------------------------------------------------------


class TestScraper:
    def test_scrapes_live_worker_and_matches_registry(self, local_workers):
        worker = local_workers("alpha")
        coord = make_coordinator()
        try:
            coord.register(worker.id, worker.url)
            obs.emit("fleet-test", "scrape.me")
            assert coord.scraper.scrape_all() == {"alpha": True}

            # Every scraped family re-appears under worker="alpha" with
            # bit-identical series — the merge is cell-exact.
            stored = coord.telemetry._views["alpha"].state
            merged = coord.telemetry.build_registry().export_state()
            for family, document in stored.items():
                expected = {
                    tuple(key) + ("alpha",): value
                    for key, value in document["series"]
                }
                assert series_map(merged, family) == expected

            view = coord.telemetry.snapshot()["workers"]["alpha"]
            assert view["scrapes"] == 1
            assert view["failures"] == 0
            assert view["events_cursor"] == obs.event_log().last_seq
            assert view["spans_cursor"] == obs.span_log().last_seq
        finally:
            coord.close()

    def test_two_workers_sum_to_fleet_totals(self, local_workers):
        first = local_workers("east")
        second = local_workers("west")
        coord = make_coordinator()
        try:
            coord.register(first.id, first.url)
            coord.register(second.id, second.url)
            obs.emit("fleet-test", "sum.check")
            results = coord.scraper.scrape_all()
            assert results == {"east": True, "west": True}
            merged = coord.telemetry.build_registry().export_state()
            counters = series_map(merged, "repro_events_emitted_total")
            by_worker = {}
            for key, value in counters.items():
                by_worker.setdefault(key[-1], 0.0)
                by_worker[key[-1]] += value
            stored = {
                wid: sum(
                    value
                    for _, value in coord.telemetry._views[wid]
                    .state["repro_events_emitted_total"]["series"]
                )
                for wid in ("east", "west")
            }
            assert by_worker == stored
        finally:
            coord.close()

    def test_transient_scrape_503_absorbed_by_retries(self, local_workers):
        worker = local_workers(
            "flaky", faults=FaultPlan(scrape_503_every=2)
        )
        coord = make_coordinator()
        try:
            coord.register(worker.id, worker.url)
            assert coord.scraper.scrape_all() == {"flaky": True}
            view = coord.telemetry.snapshot()["workers"]["flaky"]
            assert view["scrapes"] == 1
            assert view["failures"] == 0
        finally:
            coord.close()

    def test_persistent_503_is_a_counter_not_an_exception(self, local_workers):
        worker = local_workers(
            "rejector", faults=FaultPlan(scrape_503_every=1)
        )
        coord = make_coordinator()
        coord.scraper.retries = 1  # no point hammering a total outage
        try:
            coord.register(worker.id, worker.url)
            assert coord.scraper.scrape_all() == {"rejector": False}
            view = coord.telemetry.snapshot()["workers"]["rejector"]
            assert view["failures"] == 1
            assert view["scrapes"] == 0
            assert "503" in view["last_error"]
            # Cursors untouched: the next sweep resumes from scratch.
            assert coord.telemetry.cursors("rejector") == (0, 0)
        finally:
            coord.close()

    def test_dead_worker_goes_stale_then_expires(self, local_workers):
        worker = local_workers("mortal")
        coord = make_coordinator(stale_ttl=0.05)
        try:
            coord.register(worker.id, worker.url)
            assert coord.scraper.scrape_all() == {"mortal": True}

            info = coord.workers.get("mortal")
            info.last_heartbeat = (
                time.monotonic() - 10 * coord.workers.death_timeout
            )
            assert coord.workers.check_deaths() == ["mortal"]

            # Death marks the series stale promptly (via recovery), and
            # the sweep no longer contacts the dead worker.
            text = coord.telemetry.exposition()
            assert 'repro_fleet_series_stale{worker="mortal"} 1' in text
            assert 'worker="mortal"' in text  # series retained
            assert coord.scraper.scrape_all() == {}

            time.sleep(0.06)
            assert coord.scraper.scrape_all() == {}  # sweep expires it
            assert coord.telemetry.worker_ids() == []
            assert 'worker="mortal"' not in coord.telemetry.exposition()
        finally:
            coord.close()

    def test_scraper_restart_never_double_counts(self, local_workers):
        worker = local_workers("idem")
        coord = make_coordinator()
        try:
            coord.register(worker.id, worker.url)
            obs.emit("fleet-test", "idem.event")
            assert coord.scraper.scrape_all() == {"idem": True}

            def fleet_families():
                export = coord.telemetry.build_registry().export_state()
                return {
                    name: document
                    for name, document in export.items()
                    if not name.startswith("repro_fleet_")
                }

            merged_events = len(coord.telemetry.events)
            merged_spans = len(coord.telemetry.spans)
            baseline = fleet_families()

            # Same scraper again, then a brand-new scraper over the
            # same telemetry — the restart case.  Cursors live in the
            # store, so neither re-ingests an event, a span, or a
            # histogram cell.
            coord.scraper.scrape_all()
            fresh = FleetScraper(
                coord.workers, coord.telemetry, interval=30.0
            )
            fresh.scrape_all()

            assert len(coord.telemetry.events) == merged_events
            assert len(coord.telemetry.spans) == merged_spans
            assert fleet_families() == baseline
            view = coord.telemetry.snapshot()["workers"]["idem"]
            assert view["scrapes"] == 3
        finally:
            coord.close()

    def test_coordinator_snapshot_has_telemetry_section(self, local_workers):
        worker = local_workers("snap")
        coord = make_coordinator()
        try:
            coord.register(worker.id, worker.url)
            coord.scraper.scrape_all()
            telemetry = coord.snapshot()["telemetry"]
            assert telemetry["scrape_interval_seconds"] == 30.0
            assert telemetry["inflight"] == {"snap": 0}
            assert "snap" in telemetry["workers"]
            assert telemetry["workers"]["snap"]["scrapes"] == 1
        finally:
            coord.close()


# ----------------------------------------------------------------------
# Fleet endpoints on the analysis server
# ----------------------------------------------------------------------


class TestFleetEndpoints:
    def test_fleet_metrics_501_without_coordinator(self):
        with AnalysisServer(port=0, sampler_interval=None) as live:
            client = ServiceClient(live.url)
            with pytest.raises(ServiceError) as err:
                client.fleet_metrics()
            assert err.value.status == 501
            with pytest.raises(ServiceError) as err:
                client.fleet_events()
            assert err.value.status == 501

    def test_fleet_metrics_and_events_served(self, local_workers):
        coord = make_coordinator()
        with AnalysisServer(
            port=0, sampler_interval=None, coordinator=coord
        ) as live:
            client = ServiceClient(live.url)
            worker = local_workers("served")
            coord.register(worker.id, worker.url)
            marker = obs.emit("fleet-test", "served.ping")
            assert marker is not None
            coord.scraper.scrape_all()

            text = client.fleet_metrics_text()
            assert 'repro_fleet_scrapes_total{worker="served"} 1' in text
            assert "repro_fleet_scraped_workers 1" in text

            snapshot = client.fleet_metrics()
            assert "repro_fleet_scrape_age_seconds" in snapshot

            cursor, names = 0, []
            while True:
                page = client.fleet_events(since=cursor, limit=500)
                names.extend(e["name"] for e in page["events"])
                if not page["events"]:
                    break
                cursor = page["next"]
            assert "served.ping" in names

            status, _, body = http_get(
                live.url + "/v1/fleet/events?since=-1"
            )
            assert status == 400
            status, _, _ = http_get(live.url + "/v1/fleet/traces?since=0")
            assert status == 200

    def test_fleet_metrics_text_content_type(self, local_workers):
        coord = make_coordinator()
        with AnalysisServer(
            port=0, sampler_interval=None, coordinator=coord
        ) as live:
            status, headers, _ = http_get(live.url + "/v1/fleet/metrics")
            assert status == 200
            assert headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            status, _, _ = http_get(
                live.url + "/v1/fleet/metrics?format=bogus"
            )
            assert status == 400


# ----------------------------------------------------------------------
# Scraping must never perturb campaign results
# ----------------------------------------------------------------------


class TestCampaignParity:
    def test_campaign_bit_identical_with_scraper_running(self, local_workers):
        first = local_workers("sc-east")
        second = local_workers("sc-west")
        with make_coordinator(scrape_interval=0.1) as coord:
            coord.register(first.id, first.url)
            coord.register(second.id, second.url)
            assert coord.scraper.running
            requests = campaign_requests(make_tasksets(60))
            expected = sequential_docs(requests)
            docs = [
                result_to_dict(r) for r in coord.run_campaign(requests)
            ]
            assert docs == expected
            coord.scraper.scrape_all()  # at least one deterministic sweep
            assert set(coord.telemetry.worker_ids()) == {
                "sc-east",
                "sc-west",
            }
            for view in coord.snapshot()["telemetry"]["workers"].values():
                assert view["scrapes"] >= 1

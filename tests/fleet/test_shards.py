"""Sharding: fingerprint grouping, packing, rendezvous, wire format."""

from __future__ import annotations

import pytest

from repro.engine.batch import AnalysisRequest
from repro.fleet import (
    Shard,
    entries_from_wire,
    group_requests,
    pack_groups,
    rendezvous,
    rendezvous_ranking,
    shard_to_wire,
)
from repro.model import TaskSet

from .conftest import campaign_requests, make_tasksets


class TestGrouping:
    def test_same_taskset_shares_a_group(self):
        ts = TaskSet.of((2, 6, 10), (3, 11, 16))
        other = TaskSet.of((1, 4, 8),)
        requests = [
            AnalysisRequest(source=ts, test="all-approx", options={}, tag=0),
            AnalysisRequest(source=other, test="all-approx", options={}, tag=1),
            AnalysisRequest(source=ts, test="qpa", options={}, tag=2),
        ]
        groups = group_requests(requests)
        assert len(groups) == 2
        by_size = sorted(groups, key=lambda g: -len(g.entries))
        assert [e.index for e in by_size[0].entries] == [0, 2]
        assert [e.index for e in by_size[1].entries] == [1]

    def test_order_preserving_and_options_resolved(self):
        requests = campaign_requests(make_tasksets(10))
        groups = group_requests(requests)
        flattened = [e.index for g in groups for e in g.entries]
        # First-seen group order with in-group submission order intact.
        assert sorted(flattened) == list(range(10))
        for group in groups:
            for entry in group.entries:
                assert "revision_policy" in entry.options  # resolved default

    def test_unknown_test_raises(self):
        ts = make_tasksets(1)[0]
        with pytest.raises(ValueError):
            group_requests(
                [AnalysisRequest(source=ts, test="nope", options={}, tag=0)]
            )


class TestPacking:
    def test_groups_never_split(self):
        requests = campaign_requests(make_tasksets(30))
        groups = group_requests(requests)
        bundles = pack_groups(groups, max_size=4)
        seen = []
        for bundle in bundles:
            size = sum(len(g.entries) for g in bundle)
            assert size >= 1
            for group in bundle:
                seen.append(group.key)
        assert seen == [g.key for g in groups]  # order kept, all present

    def test_oversized_group_gets_its_own_bundle(self):
        ts = TaskSet.of((2, 6, 10),)
        requests = [
            AnalysisRequest(source=ts, test="all-approx", options={}, tag=i)
            for i in range(7)
        ]
        groups = group_requests(requests)
        bundles = pack_groups(groups, max_size=3)
        assert len(bundles) == 1  # affinity wins over the size cap
        assert sum(len(g.entries) for g in bundles[0]) == 7

    def test_max_size_validated(self):
        with pytest.raises(ValueError):
            pack_groups([], max_size=0)


class TestRendezvous:
    def test_deterministic(self):
        workers = ["w1", "w2", "w3"]
        assert rendezvous("key", workers) == rendezvous("key", workers)
        assert rendezvous("key", list(reversed(workers))) == rendezvous(
            "key", workers
        )

    def test_empty_fleet_is_none(self):
        assert rendezvous("key", []) is None

    def test_minimal_disruption_on_death(self):
        workers = ["w1", "w2", "w3", "w4"]
        keys = [f"key-{i}" for i in range(200)]
        before = {k: rendezvous(k, workers) for k in keys}
        survivors = [w for w in workers if w != "w2"]
        after = {k: rendezvous(k, survivors) for k in keys}
        for key in keys:
            if before[key] != "w2":
                assert after[key] == before[key]  # only w2's keys moved
        moved = [k for k in keys if before[k] == "w2"]
        assert moved  # the dead worker owned something

    def test_spreads_keys(self):
        workers = ["w1", "w2", "w3"]
        owners = {rendezvous(f"key-{i}", workers) for i in range(100)}
        assert owners == set(workers)

    def test_ranking_is_a_permutation_headed_by_the_winner(self):
        workers = ["w1", "w2", "w3", "w4"]
        for i in range(50):
            ranking = rendezvous_ranking(f"key-{i}", workers)
            assert sorted(ranking) == sorted(workers)
            assert ranking[0] == rendezvous(f"key-{i}", workers)

    def test_ranking_tail_is_stable_without_the_head(self):
        # Dropping the winner promotes the second choice: the property
        # bounded-load spill relies on.
        workers = ["w1", "w2", "w3", "w4"]
        for i in range(50):
            ranking = rendezvous_ranking(f"key-{i}", workers)
            survivors = [w for w in workers if w != ranking[0]]
            assert rendezvous_ranking(f"key-{i}", survivors) == ranking[1:]

    def test_ranking_empty(self):
        assert rendezvous_ranking("key", []) == []


class TestWireFormat:
    def test_round_trip(self):
        requests = campaign_requests(make_tasksets(6))
        groups = group_requests(requests)
        shard = Shard(id="s-test", groups=groups, attempts=2,
                      traceparent="00-" + "a" * 32 + "-" + "b" * 16 + "-01")
        wire = shard_to_wire(shard)
        assert wire["shard"] == "s-test"
        assert wire["attempt"] == 2
        entries = entries_from_wire(wire)
        assert [e["index"] for e in entries] == [e.index for e in shard.entries]
        for entry, original in zip(entries, shard.entries):
            assert entry["source"] == original.source
            assert entry["test"] == original.test
            assert entry["options"] == original.options
            assert entry["tag"] == original.tag

    def test_non_taskset_source_rejected(self):
        shard = Shard(
            id="s-bad",
            groups=group_requests(campaign_requests(make_tasksets(1))),
        )
        shard.groups[0].entries[0].source = object()
        with pytest.raises(TypeError):
            shard_to_wire(shard)

    @pytest.mark.parametrize(
        "document",
        [
            {},
            {"entries": []},
            {"entries": ["nope"]},
            {"entries": [{"index": 0}]},
            {"entries": [{"index": 0, "test": 7, "taskset": {}}]},
        ],
    )
    def test_malformed_bodies_raise(self, document):
        with pytest.raises(ValueError):
            entries_from_wire(document)

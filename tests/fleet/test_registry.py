"""Worker membership: registration, heartbeats, death detection."""

from __future__ import annotations

import time

import pytest

from repro.fleet import WorkerRegistry
from repro.fleet.registry import ALIVE, DEAD, LEFT


def rewind(registry: WorkerRegistry, worker_id: str, seconds: float) -> None:
    """Age a worker's last heartbeat so death detection can be driven
    deterministically (no sleeping through monitor intervals)."""
    info = registry.get(worker_id)
    assert info is not None
    info.last_heartbeat = time.monotonic() - seconds


class TestMembership:
    def test_register_and_heartbeat(self):
        registry = WorkerRegistry(heartbeat_interval=1.0, miss_budget=3)
        info = registry.register("w1", "http://127.0.0.1:1")
        assert info.state == ALIVE
        assert registry.heartbeat("w1") is True
        assert registry.get("w1").heartbeats == 1
        assert registry.alive_ids() == ["w1"]

    def test_heartbeat_from_unknown_worker(self):
        registry = WorkerRegistry()
        assert registry.heartbeat("ghost") is False

    def test_registration_validates(self):
        registry = WorkerRegistry()
        with pytest.raises(ValueError):
            registry.register("", "http://x")
        with pytest.raises(ValueError):
            registry.register("w", "")

    def test_deregister_is_graceful(self):
        registry = WorkerRegistry()
        registry.register("w1", "http://127.0.0.1:1")
        assert registry.deregister("w1") is True
        assert registry.get("w1").state == LEFT
        assert registry.alive_ids() == []
        assert registry.deregister("w1") is False  # idempotent

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            WorkerRegistry(heartbeat_interval=0)
        with pytest.raises(ValueError):
            WorkerRegistry(miss_budget=0)


class TestDeathDetection:
    def test_death_timeout_is_interval_times_budget(self):
        registry = WorkerRegistry(heartbeat_interval=2.0, miss_budget=3)
        assert registry.death_timeout == 6.0

    def test_overdue_worker_dies_once(self):
        deaths = []
        registry = WorkerRegistry(
            heartbeat_interval=0.5, miss_budget=2, on_death=deaths.append
        )
        registry.register("w1", "http://127.0.0.1:1")
        registry.register("w2", "http://127.0.0.1:2")
        rewind(registry, "w1", seconds=5.0)
        assert registry.check_deaths() == ["w1"]
        assert deaths == ["w1"]
        assert registry.get("w1").state == DEAD
        assert registry.alive_ids() == ["w2"]
        # A second sweep must not re-fire the callback.
        assert registry.check_deaths() == []
        assert deaths == ["w1"]

    def test_fresh_worker_survives_sweep(self):
        registry = WorkerRegistry(heartbeat_interval=0.5, miss_budget=2)
        registry.register("w1", "http://127.0.0.1:1")
        assert registry.check_deaths() == []
        assert registry.get("w1").state == ALIVE

    def test_heartbeat_revives_dead_worker(self):
        registry = WorkerRegistry(heartbeat_interval=0.5, miss_budget=2)
        registry.register("w1", "http://127.0.0.1:1")
        rewind(registry, "w1", seconds=5.0)
        registry.check_deaths()
        assert registry.get("w1").state == DEAD
        assert registry.heartbeat("w1") is True
        assert registry.get("w1").state == ALIVE

    def test_reregistration_revives_and_updates_url(self):
        registry = WorkerRegistry(heartbeat_interval=0.5, miss_budget=2)
        registry.register("w1", "http://127.0.0.1:1")
        rewind(registry, "w1", seconds=5.0)
        registry.check_deaths()
        info = registry.register("w1", "http://127.0.0.1:99")
        assert info.state == ALIVE
        assert info.url == "http://127.0.0.1:99"
        assert info.deaths == 1

    def test_left_worker_never_dies(self):
        deaths = []
        registry = WorkerRegistry(
            heartbeat_interval=0.5, miss_budget=2, on_death=deaths.append
        )
        registry.register("w1", "http://127.0.0.1:1")
        registry.deregister("w1")
        rewind(registry, "w1", seconds=50.0)
        assert registry.check_deaths() == []
        assert deaths == []

    def test_monitor_thread_detects_death(self):
        deaths = []
        registry = WorkerRegistry(
            heartbeat_interval=0.1, miss_budget=2, on_death=deaths.append
        )
        registry.register("w1", "http://127.0.0.1:1")
        registry.start()
        try:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and not deaths:
                time.sleep(0.05)
        finally:
            registry.stop()
        assert deaths == ["w1"]

    def test_snapshot_shape(self):
        registry = WorkerRegistry()
        registry.register("w1", "http://127.0.0.1:1")
        registry.heartbeat("w1")
        (snap,) = registry.snapshot()
        assert snap["worker"] == "w1"
        assert snap["state"] == ALIVE
        assert snap["heartbeats"] == 1
        assert snap["heartbeat_age_seconds"] >= 0.0
        assert snap["shards_completed"] == 0

    def test_note_shard_accounting(self):
        registry = WorkerRegistry()
        registry.register("w1", "http://127.0.0.1:1")
        registry.note_shard("w1", ok=True)
        registry.note_shard("w1", ok=False)
        registry.note_shard("ghost", ok=True)  # unknown: ignored
        info = registry.get("w1")
        assert (info.shards_completed, info.shards_failed) == (1, 1)

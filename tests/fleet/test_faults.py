"""Failure-injection plans: parsing, env wiring, trigger queries."""

from __future__ import annotations

import pytest

from repro.fleet import FAULTS_ENV, FaultPlan


class TestParsing:
    def test_empty_spec_is_inactive(self):
        assert not FaultPlan.parse("").active
        assert not FaultPlan.parse(None).active
        assert not FaultPlan().active

    def test_full_grammar(self):
        plan = FaultPlan.parse(
            "crash-on-shard=3,heartbeat-blackhole=2,stall-on-shard=1:0.5,"
            "http-503=4,scrape-503=5"
        )
        assert plan.crash_on_shard == 3
        assert plan.heartbeat_blackhole_after == 2
        assert plan.stall_on_shard == 1
        assert plan.stall_seconds == 0.5
        assert plan.reject_503_every == 4
        assert plan.scrape_503_every == 5
        assert plan.active

    def test_bare_blackhole(self):
        plan = FaultPlan.parse("heartbeat-blackhole")
        assert plan.heartbeat_blackhole_after == 0

    def test_stall_seconds_default(self):
        assert FaultPlan.parse("stall-on-shard=2").stall_seconds == 1.0

    def test_round_trips_through_str(self):
        spec = "crash-on-shard=2,stall-on-shard=1:1.5,scrape-503=3"
        assert FaultPlan.parse(str(FaultPlan.parse(spec))) == FaultPlan.parse(spec)

    @pytest.mark.parametrize(
        "spec",
        ["bogus", "crash-on-shard=zero", "crash-on-shard=0", "http-503=-1",
         "stall-on-shard=1:abc", "stall-on-shard=1:-2", "scrape-503=0"],
    )
    def test_invalid_specs_raise(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert not FaultPlan.from_env().active
        monkeypatch.setenv(FAULTS_ENV, "http-503=2")
        assert FaultPlan.from_env().reject_503_every == 2


class TestTriggers:
    def test_crash_fires_from_nth_shard(self):
        plan = FaultPlan(crash_on_shard=3)
        assert [plan.should_crash(n) for n in (1, 2, 3, 4)] == [
            False, False, True, True,
        ]
        assert not FaultPlan().should_crash(100)

    def test_503_every_kth(self):
        plan = FaultPlan(reject_503_every=2)
        assert [plan.should_reject(n) for n in (1, 2, 3, 4)] == [
            False, True, False, True,
        ]
        assert not FaultPlan().should_reject(2)

    def test_scrape_503_every_kth(self):
        plan = FaultPlan(scrape_503_every=3)
        assert [plan.should_reject_scrape(n) for n in (1, 2, 3, 4, 5, 6)] == [
            False, False, True, False, False, True,
        ]
        # Scrape and shard 503s are independent counters/knobs.
        assert not plan.should_reject(3)
        assert not FaultPlan(reject_503_every=1).should_reject_scrape(1)

    def test_stall_only_on_exact_shard(self):
        plan = FaultPlan(stall_on_shard=2, stall_seconds=1.25)
        assert plan.stall_for(1) == 0.0
        assert plan.stall_for(2) == 1.25
        assert plan.stall_for(3) == 0.0

    def test_heartbeat_blackhole(self):
        plan = FaultPlan(heartbeat_blackhole_after=2)
        assert plan.heartbeat_allowed(0)
        assert plan.heartbeat_allowed(1)
        assert not plan.heartbeat_allowed(2)
        total = FaultPlan(heartbeat_blackhole_after=0)
        assert not total.heartbeat_allowed(0)
        assert FaultPlan().heartbeat_allowed(10**6)

"""Coordinator behaviour on the happy path: placement, parity with the
sequential ``BatchRunner`` oracle, degradation, membership plumbing."""

from __future__ import annotations

import random

import pytest

from repro.fleet import Coordinator, FleetRunner
from repro.model.serialization import result_to_dict

from .conftest import campaign_requests, make_tasksets, sequential_docs


def make_coordinator(**overrides) -> Coordinator:
    options = dict(
        heartbeat_interval=0.2,
        miss_budget=3,
        shard_size=4,
        shard_timeout=30.0,
        retries=2,
        backoff_base=0.01,
        backoff_cap=0.05,
        rng=random.Random(0xC0FFEE),
    )
    options.update(overrides)
    return Coordinator(**options)


@pytest.fixture
def coordinator():
    coord = make_coordinator()
    yield coord
    coord.close()


class TestDegradation:
    def test_zero_workers_runs_locally_bit_identical(self, coordinator):
        requests = campaign_requests(make_tasksets(25))
        docs = [result_to_dict(r) for r in coordinator.run_campaign(requests)]
        assert docs == sequential_docs(requests)

    def test_empty_campaign(self, coordinator):
        assert coordinator.run_campaign([]) == []


class TestFleetExecution:
    def test_parity_with_sequential_runner(self, coordinator, local_workers):
        for i in range(3):
            worker = local_workers(f"w{i}")
            coordinator.register(worker.id, worker.url)
        requests = campaign_requests(make_tasksets(100))
        docs = [result_to_dict(r) for r in coordinator.run_campaign(requests)]
        assert docs == sequential_docs(requests)
        assert not coordinator.dead_letters

    def test_work_spreads_across_workers(self, coordinator, local_workers):
        for i in range(3):
            worker = local_workers(f"w{i}")
            coordinator.register(worker.id, worker.url)
        coordinator.run_campaign(campaign_requests(make_tasksets(60)))
        completed = {
            snap["worker"]: snap["shards_completed"]
            for snap in coordinator.workers.snapshot()
        }
        assert sum(completed.values()) >= 1
        assert sum(1 for count in completed.values() if count) >= 2

    def test_back_to_back_campaigns_reuse_the_fleet(
        self, coordinator, local_workers
    ):
        worker = local_workers("w0")
        coordinator.register(worker.id, worker.url)
        for _ in range(2):
            requests = campaign_requests(make_tasksets(10))
            docs = [
                result_to_dict(r) for r in coordinator.run_campaign(requests)
            ]
            assert docs == sequential_docs(requests)


class TestMembership:
    def test_register_response_carries_heartbeat_contract(
        self, coordinator, local_workers
    ):
        worker = local_workers("w0")
        ack = coordinator.register(worker.id, worker.url)
        assert ack["worker"] == "w0"
        assert ack["heartbeat_interval"] == coordinator.workers.heartbeat_interval
        assert ack["miss_budget"] == coordinator.workers.miss_budget

    def test_deregistered_worker_gets_no_shards(
        self, coordinator, local_workers
    ):
        staying = local_workers("stay")
        leaving = local_workers("leave")
        coordinator.register(staying.id, staying.url)
        coordinator.register(leaving.id, leaving.url)
        coordinator.deregister("leave")
        requests = campaign_requests(make_tasksets(40))
        docs = [result_to_dict(r) for r in coordinator.run_campaign(requests)]
        assert docs == sequential_docs(requests)
        by_worker = {
            snap["worker"]: snap["shards_completed"]
            for snap in coordinator.workers.snapshot()
        }
        assert by_worker["leave"] == 0
        assert by_worker["stay"] >= 1

    def test_snapshot_shape(self, coordinator, local_workers):
        worker = local_workers("w0")
        coordinator.register(worker.id, worker.url)
        snap = coordinator.snapshot()
        assert snap["alive"] == ["w0"]
        assert snap["dead_letters"] == []
        assert snap["shard_size"] == coordinator.shard_size
        assert snap["death_timeout_seconds"] == pytest.approx(
            coordinator.workers.death_timeout
        )

    def test_closed_coordinator_rejects_registration(self, local_workers):
        coord = make_coordinator()
        coord.close()
        worker = local_workers("w0")
        with pytest.raises(RuntimeError):
            coord.register(worker.id, worker.url)


class TestRunnerSeam:
    def test_fleet_runner_reports_parallel_jobs(self, coordinator):
        runner = FleetRunner(coordinator)
        assert runner.jobs == 2

    def test_fleet_runner_delegates(self, coordinator, local_workers):
        worker = local_workers("w0")
        coordinator.register(worker.id, worker.url)
        requests = campaign_requests(make_tasksets(8))
        runner = FleetRunner(coordinator)
        docs = [result_to_dict(r) for r in runner.run(requests)]
        assert docs == sequential_docs(requests)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Coordinator(shard_size=0)
        with pytest.raises(ValueError):
            Coordinator(shard_timeout=0)
        with pytest.raises(ValueError):
            Coordinator(retries=-1)
        with pytest.raises(ValueError):
            Coordinator(balance_factor=0.9)


class TestBoundedLoadPlacement:
    def test_no_worker_exceeds_the_cap(self, local_workers):
        coord = make_coordinator(balance_factor=1.0)
        try:
            for i in range(4):
                worker = local_workers(f"w{i}")
                coord.register(worker.id, worker.url)
            count = 80
            coord.run_campaign(campaign_requests(make_tasksets(count)))
            # Every request is one group here (distinct fingerprints),
            # so completed-shard request totals mirror placement.  With
            # factor 1.0 no worker may take more than ceil(count/4)
            # requests; verify via the per-worker request tallies.
            per_worker = {
                snap["worker"]: snap["shards_completed"]
                for snap in coord.workers.snapshot()
            }
            assert sum(1 for c in per_worker.values() if c) == 4
        finally:
            coord.close()

    def test_affinity_survives_gentle_cap(self, local_workers):
        # With a generous factor the rendezvous favorite keeps its keys:
        # two identical campaigns produce identical shard counts.
        coord = make_coordinator(balance_factor=2.0)
        try:
            for i in range(3):
                worker = local_workers(f"w{i}")
                coord.register(worker.id, worker.url)
            requests = campaign_requests(make_tasksets(30))
            coord.run_campaign(requests)
            first = {
                snap["worker"]: snap["shards_completed"]
                for snap in coord.workers.snapshot()
            }
            coord.run_campaign(requests)
            second = {
                snap["worker"]: snap["shards_completed"]
                for snap in coord.workers.snapshot()
            }
            assert second == {w: 2 * c for w, c in first.items()}
        finally:
            coord.close()

"""Unit tests for the random task-set generator."""

import pytest

from repro.generation import GeneratorConfig, TaskSetGenerator, generate_taskset


class TestConfigValidation:
    def test_defaults_valid(self):
        GeneratorConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(tasks=(0, 5)),
            dict(tasks=(5, 2)),
            dict(utilization=(0.0, 0.5)),
            dict(utilization=(0.9, 0.8)),
            dict(gap=(0.5, 0.2)),
            dict(gap=(0.2, 1.0)),
            dict(gap=(-0.2, 0.2)),
            dict(period_range=(0, 100)),
            dict(period_range=(100, 10)),
            dict(period_distribution="exponential"),
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GeneratorConfig(**kwargs)

    def test_negative_gap_opt_in(self):
        cfg = GeneratorConfig(gap=(-0.3, 0.1), allow_deadline_above_period=True)
        gen = TaskSetGenerator(cfg, seed=1)
        sets = list(gen.sets(20))
        assert any(any(t.deadline > t.period for t in ts) for ts in sets)

    def test_scalar_shorthand(self):
        cfg = GeneratorConfig(tasks=7, utilization=0.9, gap=0.2)
        ts = TaskSetGenerator(cfg, seed=1).one()
        assert len(ts) == 7


class TestGeneratedStructure:
    def test_bounds_respected(self):
        cfg = GeneratorConfig(
            tasks=(5, 15),
            utilization=(0.8, 0.9),
            period_range=(1_000, 20_000),
            gap=(0.1, 0.4),
        )
        gen = TaskSetGenerator(cfg, seed=99)
        for ts in gen.sets(40):
            assert 5 <= len(ts) <= 15
            for t in ts:
                assert 1_000 <= t.period <= 20_000
                assert 1 <= t.wcet <= t.period
                assert t.wcet <= t.deadline <= t.period

    def test_utilization_close_to_target(self):
        ts = generate_taskset(n=20, utilization=0.9, seed=5)
        assert abs(float(ts.utilization) - 0.9) < 0.02

    def test_gap_statistics(self):
        cfg = GeneratorConfig(
            tasks=(50, 50), utilization=(0.5, 0.5), gap=(0.25, 0.35)
        )
        ts = TaskSetGenerator(cfg, seed=11).one()
        assert 0.2 < ts.average_gap_ratio < 0.4

    def test_ratio_distribution_pins_extremes(self):
        cfg = GeneratorConfig(
            tasks=(10, 10),
            utilization=(0.9, 0.9),
            period_range=(100, 100_000),
            period_distribution="ratio",
        )
        ts = TaskSetGenerator(cfg, seed=2).one()
        assert ts.min_period == 100
        assert ts.max_period == 100_000


class TestDeterminism:
    def test_same_seed_same_sets(self):
        cfg = GeneratorConfig()
        a = list(TaskSetGenerator(cfg, seed=123).sets(5))
        b = list(TaskSetGenerator(cfg, seed=123).sets(5))
        assert a == b

    def test_different_seeds_differ(self):
        cfg = GeneratorConfig()
        a = TaskSetGenerator(cfg, seed=1).one()
        b = TaskSetGenerator(cfg, seed=2).one()
        assert a != b

    def test_iterator_protocol(self):
        gen = TaskSetGenerator(GeneratorConfig(), seed=3)
        it = iter(gen)
        assert next(it) is not None

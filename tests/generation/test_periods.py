"""Unit tests for period samplers."""

import math
import random

import pytest

from repro.generation import (
    loguniform_periods,
    ratio_constrained_periods,
    uniform_periods,
)


class TestUniform:
    def test_range_respected(self):
        rng = random.Random(1)
        periods = uniform_periods(500, 10, 99, rng)
        assert all(10 <= p <= 99 for p in periods)

    def test_validation(self):
        rng = random.Random(1)
        with pytest.raises(ValueError):
            uniform_periods(0, 1, 10, rng)
        with pytest.raises(ValueError):
            uniform_periods(5, 10, 9, rng)
        with pytest.raises(ValueError):
            uniform_periods(5, 0, 9, rng)


class TestLogUniform:
    def test_range_respected(self):
        rng = random.Random(2)
        periods = loguniform_periods(500, 10, 100_000, rng)
        assert all(10 <= p <= 100_000 for p in periods)

    def test_decades_roughly_balanced(self):
        rng = random.Random(3)
        periods = loguniform_periods(4000, 10, 100_000, rng)
        decades = [0] * 4
        for p in periods:
            decades[min(3, int(math.log10(p / 10)))] += 1
        # Each of the four decades gets a substantial share.
        assert all(d > 400 for d in decades)


class TestRatioConstrained:
    def test_extremes_pinned(self):
        rng = random.Random(4)
        for n in (2, 5, 50):
            periods = ratio_constrained_periods(n, 100, 1000.0, rng)
            assert min(periods) == 100
            assert max(periods) == 100_000
            assert len(periods) == n

    def test_single_period(self):
        rng = random.Random(5)
        assert ratio_constrained_periods(1, 100, 10.0, rng) == [100]

    def test_ratio_one(self):
        rng = random.Random(6)
        periods = ratio_constrained_periods(4, 100, 1.0, rng)
        assert all(p == 100 for p in periods)

    def test_validation(self):
        with pytest.raises(ValueError):
            ratio_constrained_periods(3, 100, 0.5, random.Random(1))

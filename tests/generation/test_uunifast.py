"""Unit tests for UUniFast sampling."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generation import uunifast, uunifast_discard


class TestUUniFast:
    @given(
        st.integers(min_value=1, max_value=60),
        st.floats(min_value=0.05, max_value=0.999),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=80)
    def test_sums_to_target_and_positive(self, n, total, seed):
        values = uunifast(n, total, random.Random(seed))
        assert len(values) == n
        assert all(v > 0 for v in values)
        assert sum(values) == pytest.approx(total, rel=1e-9)

    def test_single_task_gets_everything(self):
        assert uunifast(1, 0.7, random.Random(1)) == [0.7]

    def test_validation(self):
        with pytest.raises(ValueError):
            uunifast(0, 0.5)
        with pytest.raises(ValueError):
            uunifast(3, 0.0)

    def test_deterministic_under_seed(self):
        a = uunifast(10, 0.9, random.Random(42))
        b = uunifast(10, 0.9, random.Random(42))
        assert a == b

    def test_not_biased_to_equal_split(self):
        """The simplex sample must show real spread (Bini's point [4])."""
        rng = random.Random(7)
        spreads = []
        for _ in range(200):
            v = uunifast(5, 0.9, rng)
            spreads.append(max(v) - min(v))
        assert sum(s > 0.2 for s in spreads) > 100


class TestDiscardVariant:
    def test_caps_respected(self):
        rng = random.Random(3)
        for _ in range(50):
            values = uunifast_discard(3, 2.5, rng)
            assert all(v <= 1.0 for v in values)
            assert sum(values) == pytest.approx(2.5)

    def test_impossible_target_rejected(self):
        with pytest.raises(ValueError):
            uunifast_discard(2, 2.5)

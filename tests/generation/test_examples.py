"""The Table-1 example systems must exhibit the paper's documented behaviour.

These tests pin the qualitative content of the paper's Table 1 — they
are the per-row acceptance criteria of experiment E4 in DESIGN.md.
"""

import pytest

from repro.analysis import BoundMethod, devi_test, processor_demand_test, utilization_of
from repro.core import all_approx_test, dynamic_test
from repro.generation import (
    burns_taskset,
    example_systems,
    gap_taskset,
    gresser1_system,
    gresser2_system,
    ma_shin_taskset,
)
from repro.model import EventStreamTask, TaskSet, as_components
from repro.sim import simulate_feasibility


class TestInventory:
    def test_all_five_present(self):
        assert set(example_systems()) == {
            "burns", "ma_shin", "gap", "gresser1", "gresser2",
        }

    def test_sizes_in_papers_range(self):
        """Paper: 'The amount of tasks are small (7 to 21 tasks)'."""
        for name, system in example_systems().items():
            n_sources = len(system)
            assert 7 <= n_sources <= 21, (name, n_sources)

    def test_gap_follows_locke_table(self):
        gap = gap_taskset()
        assert len(gap) == 18
        by_name = {t.name: t for t in gap}
        # Spot-check the published rows (microseconds).
        assert by_name["weapon-release"].wcet == 3_000
        assert by_name["weapon-release"].deadline == 5_000
        assert by_name["weapon-release"].period == 200_000
        assert by_name["nav-update"].period == 59_000
        assert by_name["radar-tracking"].utilization == pytest.approx(0.08)


class TestFeasibility:
    @pytest.mark.parametrize("name", ["burns", "ma_shin", "gap", "gresser1", "gresser2"])
    def test_all_examples_feasible(self, name):
        system = example_systems()[name]
        comps = as_components(system)
        assert processor_demand_test(comps).is_feasible, name
        assert dynamic_test(comps).is_feasible, name
        assert all_approx_test(comps).is_feasible, name

    @pytest.mark.parametrize("name", ["burns", "ma_shin", "gap", "gresser1", "gresser2"])
    def test_simulation_confirms(self, name):
        system = example_systems()[name]
        assert simulate_feasibility(system).is_feasible, name


class TestDeviBehaviour:
    """Devi accepts Burns and GAP, fails the other three (Table 1)."""

    def test_devi_accepts_burns_and_gap(self):
        assert devi_test(burns_taskset()).is_feasible
        assert devi_test(gap_taskset()).is_feasible

    @pytest.mark.parametrize(
        "system_fn", [ma_shin_taskset, gresser1_system, gresser2_system]
    )
    def test_devi_fails_the_rest(self, system_fn):
        assert not devi_test(as_components(system_fn())).is_feasible


class TestEffortShape:
    """The iteration-count relations the paper's Table 1 demonstrates."""

    def test_devi_accepted_sets_cost_n_for_new_tests(self):
        for ts in (burns_taskset(), gap_taskset()):
            n = len(ts)
            assert devi_test(ts).iterations == n
            assert dynamic_test(ts).iterations == n
            assert all_approx_test(ts).iterations == n

    @pytest.mark.parametrize("name", ["burns", "ma_shin", "gap", "gresser1", "gresser2"])
    def test_processor_demand_5_to_200_times_dearer(self, name):
        """Paper: 'between 5 and 100 times less iterations' for the new
        tests; allow a wider band since our populations differ."""
        comps = as_components(example_systems()[name])
        pda = processor_demand_test(comps, bound_method=BoundMethod.BARUAH).iterations
        for test in (dynamic_test, all_approx_test):
            new = test(comps).iterations
            assert 3 * new <= pda <= 500 * new, (name, new, pda)

    def test_utilizations_high(self):
        """The sets exercise the hard (high-utilization) regime."""
        for name in ("burns", "ma_shin", "gap"):
            u = float(utilization_of(as_components(example_systems()[name])))
            assert u > 0.85, (name, u)

"""Unit tests for service curves."""

import pytest

from repro.rtc import ServiceCurve, bounded_delay, full_processor


class TestServiceCurve:
    def test_full_processor_is_bisecting_line(self):
        beta = full_processor()
        for x in (0, 1, 7, 100):
            assert beta(x) == x

    def test_rate_latency(self):
        beta = bounded_delay(rate=0.5, delay=4)
        assert beta(2) == 0
        assert beta(4) == 0
        assert beta(8) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceCurve(rate=0)
        with pytest.raises(ValueError):
            ServiceCurve(rate=1.5)
        with pytest.raises(ValueError):
            ServiceCurve(rate=1, delay=-1)

"""Unit tests for the piecewise-linear curve algebra."""

from fractions import Fraction

import pytest

from repro.rtc import (
    MinOfLinesCurve,
    PiecewiseLinearCurve,
    hull_lines,
    reduce_lines,
    upper_hull,
)


class TestPiecewiseLinearCurve:
    def test_evaluation(self):
        c = PiecewiseLinearCurve.from_points([(2, 1), (4, 5)], final_slope=2)
        assert c(1) == 0        # before first breakpoint
        assert c(2) == 1
        assert c(3) == 3        # interpolation
        assert c(4) == 5
        assert c(6) == 9        # final ray

    def test_plus(self):
        a = PiecewiseLinearCurve.from_points([(0, 0), (2, 2)], final_slope=1)
        b = PiecewiseLinearCurve.from_points([(1, 3)], final_slope=0)
        s = a.plus(b)
        assert s(2) == a(2) + b(2)
        assert s(10) == a(10) + b(10)

    def test_validation(self):
        with pytest.raises(ValueError):
            PiecewiseLinearCurve.from_points([], final_slope=1)
        with pytest.raises(ValueError):
            PiecewiseLinearCurve.from_points([(2, 1), (2, 3)], final_slope=1)

    def test_dominates(self):
        c = PiecewiseLinearCurve.from_points([(0, 1)], final_slope=1)
        assert c.dominates([(0, 1), (3, 4)])
        assert not c.dominates([(1, 3)])


class TestMinOfLines:
    def test_evaluation_with_start_cutoff(self):
        c = MinOfLinesCurve(lines=((4, 1), (0, 2)), start=3)
        assert c(2) == 0            # before start
        assert c(3) == 6            # min(7, 6)
        assert c(10) == 14          # min(14, 20)

    def test_negative_clip(self):
        c = MinOfLinesCurve(lines=((-5, 1),), start=0)
        assert c(2) == 0
        assert c(7) == 2

    def test_without_moves_up(self):
        c = MinOfLinesCurve(lines=((4, 1), (0, 2)), start=0)
        reduced = c.without(0)
        for x in range(0, 20):
            assert reduced(x) >= c(x)

    def test_cannot_remove_last_line(self):
        with pytest.raises(ValueError):
            MinOfLinesCurve(lines=((1, 1),)).without(0)

    def test_breakpoint_candidates_include_intersections(self):
        c = MinOfLinesCurve(lines=((4, 1), (0, 2)), start=0)
        assert 4 in c.breakpoint_candidates()  # 4 + x = 2x at x=4


class TestUpperHull:
    def test_dominates_input(self):
        points = [(3, 1), (7, 6), (10, 7), (11, 12), (13, 14), (19, 15), (23, 20)]
        hull = upper_hull(points)
        curve = PiecewiseLinearCurve.from_points(hull, final_slope=0)
        for x, y in points:
            assert curve(x) >= y

    def test_concave_slopes(self):
        points = [(1, 1), (2, 3), (3, 4), (5, 9), (8, 10)]
        hull = upper_hull(points)
        slopes = [
            Fraction(y1 - y0, x1 - x0)
            for (x0, y0), (x1, y1) in zip(hull, hull[1:])
        ]
        assert all(a >= b for a, b in zip(slopes, slopes[1:]))

    def test_keeps_extremes(self):
        points = [(1, 1), (2, 5), (3, 6)]
        hull = upper_hull(points)
        assert hull[0] == (1, 1)
        assert hull[-1] == (3, 6)


class TestHullLines:
    def test_min_of_lines_equals_hull_on_range(self):
        points = [(3, 1), (11, 12), (13, 14), (23, 20)]
        curve = hull_lines(points, final_slope=Fraction(1, 2), start=3)
        pwl = PiecewiseLinearCurve.from_points(points, final_slope=Fraction(1, 2))
        for x in range(3, 24):
            assert curve(x) >= pwl(x) - 0  # dominates
            # and is tight at hull corners:
        for x, y in points:
            assert curve(x) == y

    def test_steep_final_ray_does_not_undercut(self):
        """Regression: a rate ray steeper than the last hull segment must
        not dip below earlier corners (the bug found during Section 3.6
        validation)."""
        points = [(3, 1), (11, 12), (13, 14), (23, 20), (29, 23)]
        curve = hull_lines(points, final_slope=Fraction(87, 112), start=3)
        for x, y in points:
            assert curve(x) >= y


class TestReduceLines:
    def test_still_dominates_after_reduction(self):
        points = [(2, 2), (5, 6), (9, 8), (14, 13), (20, 15)]
        hull = upper_hull(points)
        curve = hull_lines(hull, final_slope=Fraction(1, 2), start=2)
        for k in (3, 2, 1):
            reduced = reduce_lines(curve, k, points)
            assert reduced.segment_count <= k
            for x, y in points:
                assert reduced(x) >= y

    def test_more_segments_never_worse(self):
        points = [(2, 2), (5, 6), (9, 8), (14, 13), (20, 15)]
        hull = upper_hull(points)
        curve = hull_lines(hull, final_slope=Fraction(1, 2), start=2)
        two = reduce_lines(curve, 2, points)
        three = reduce_lines(curve, 3, points)
        for x in range(2, 25):
            assert three(x) <= two(x)

    def test_validation(self):
        c = MinOfLinesCurve(lines=((1, 1),))
        with pytest.raises(ValueError):
            reduce_lines(c, 0, [(1, 1)])

"""Unit tests for the RTC feasibility test and the §3.6 comparison."""

import pytest

from repro.analysis import BoundMethod, feasibility_bound, processor_demand_test
from repro.analysis.dbf import dbf_points
from repro.core import superposition_test
from repro.model import EventStream, EventStreamTask, TaskSet, task
from repro.result import Verdict
from repro.rtc import (
    approximate_arrival_curve,
    approximation_gap,
    arrival_staircase,
    demand_curve,
    rtc_feasibility_test,
)

from ..conftest import random_feasible_candidate


class TestArrivalCurves:
    def test_staircase_matches_eta(self):
        stream = EventStream.burst(count=3, spacing=2, period=20)
        for x, y in arrival_staircase(stream, 60):
            assert y == stream.eta(x)

    def test_approximation_dominates_staircase(self):
        stream = EventStream.burst(count=3, spacing=2, period=20)
        corners = arrival_staircase(stream, 100)
        for segments in (2, 3, 4):
            curve = approximate_arrival_curve(stream, segments, 100)
            assert curve.segment_count <= segments
            assert curve.dominates(corners)

    def test_periodic_two_segments_tight_at_corners(self):
        """Fig. 4a: a periodic stream needs only the burst+rate pair."""
        stream = EventStream.periodic(10)
        curve = approximate_arrival_curve(stream, 2, 100)
        # Exact at the staircase corners (the envelope through corners).
        for k in range(0, 10):
            assert curve(10 * k) == k + 1


class TestDemandCurve:
    def test_dominates_dbf_everywhere_in_bound(self, rng):
        for _ in range(60):
            ts = random_feasible_candidate(rng)
            if ts.utilization >= 1:
                continue
            bound = feasibility_bound(ts, BoundMethod.BEST)
            if not bound:
                continue
            corners = list(dbf_points(ts, bound))
            if not corners:
                continue
            for segments in (2, 3):
                assert demand_curve(ts, segments, bound).dominates(corners)


class TestRtcTest:
    def test_sound(self, rng):
        """RTC acceptance implies exact feasibility — for any segment
        budget (the approximation only over-estimates demand)."""
        accepted = 0
        for _ in range(250):
            ts = random_feasible_candidate(rng)
            exact = processor_demand_test(ts).is_feasible
            for segments in (2, 3):
                if rtc_feasibility_test(ts, segments).is_feasible:
                    accepted += 1
                    assert exact, ts.summary()
        assert accepted > 100

    def test_more_segments_accept_no_less(self, rng):
        for _ in range(150):
            ts = random_feasible_candidate(rng)
            if rtc_feasibility_test(ts, 2).is_feasible:
                assert rtc_feasibility_test(ts, 4).is_feasible, ts.summary()

    def test_rejection_is_unknown(self):
        ts = TaskSet.of((4, 8, 40), (6, 21, 60), (11, 51, 100))
        r = rtc_feasibility_test(ts, 2)
        if not r.is_feasible:
            assert r.verdict is Verdict.UNKNOWN

    def test_overload(self):
        assert rtc_feasibility_test(TaskSet.of((3, 2, 2))).verdict is Verdict.INFEASIBLE

    def test_single_periodic_task_two_segments_equals_superpos1(self, rng):
        """Paper §3.6: on one periodic task the 2-segment RTC
        approximation and the SuperPos(1)/Devi envelope coincide, so the
        verdicts must match."""
        for _ in range(100):
            period = rng.randint(2, 30)
            wcet = rng.randint(1, period)
            deadline = rng.randint(1, period)
            ts = TaskSet.of((wcet, deadline, period))
            assert (
                rtc_feasibility_test(ts, 2).is_feasible
                == superposition_test(ts, 1).is_feasible
            ), ts.summary()


class TestApproximationGap:
    def test_errors_nonnegative(self, simple_taskset):
        stats = approximation_gap(simple_taskset, 3, 100)
        assert stats["rtc_max"] >= stats["rtc_mean"] >= 0
        assert stats["envelope_max"] >= stats["envelope_mean"] >= 0

    def test_burstier_systems_need_more_segments(self):
        """Fig. 4b's point: with bursts, 2 segments overestimate more
        than 3."""
        system = [
            EventStreamTask(
                stream=EventStream.burst(count=4, spacing=2, period=50),
                wcet=3,
                deadline=6,
            )
        ]
        two = approximation_gap(system, 2, 200)
        three = approximation_gap(system, 3, 200)
        assert three["rtc_mean"] <= two["rtc_mean"]

    def test_empty_horizon(self):
        stats = approximation_gap(TaskSet.of((1, 50, 50)), 2, 10)
        assert stats == {
            "rtc_max": 0.0,
            "rtc_mean": 0.0,
            "envelope_max": 0.0,
            "envelope_mean": 0.0,
        }
